//! Diagonal-split storage — an aggregation (`∪`) format.
//!
//! The paper's example of the `E ∪ E` production (§2): "a format in which
//! the diagonal elements are stored separately from the off-diagonal
//! ones". The diagonal lives in a dense vector (every diagonal position
//! structural, O(1) access); the off-diagonal entries live in a CSR
//! sub-matrix. Enumerating the matrix requires enumerating *both* parts,
//! so a statement referencing it is split into two copies by the compiler
//! (paper §4).

use crate::formats::csr::Csr;
use crate::scalar::Scalar;
use crate::view::{
    detect_properties, FormatView, Order, SearchKind, StoredGuarantee, Transform, ViewExpr,
};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Square matrix with dense diagonal + CSR off-diagonals.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagSplit<T: Scalar = f64> {
    /// Matrix order (rows == cols).
    pub n: usize,
    /// The diagonal, `diag[i] = A[i][i]`; every position structural.
    pub diag: Vec<T>,
    /// Strictly off-diagonal entries in CSR.
    pub off: Csr<T>,
}

impl<T: Scalar> DiagSplit<T> {
    /// Builds from triplets.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn from_triplets(t: &Triplets<T>) -> DiagSplit<T> {
        assert_eq!(t.nrows(), t.ncols(), "diagsplit requires a square matrix");
        let n = t.nrows();
        let mut t = t.clone();
        t.normalize();
        let mut diag = vec![T::ZERO; n];
        let mut off = Triplets::new(n, n);
        for &(r, c, v) in t.entries() {
            if r == c {
                diag[r] = v;
            } else {
                off.push(r, c, v);
            }
        }
        off.normalize();
        DiagSplit {
            n,
            diag,
            off: Csr::from_triplets(&off),
        }
    }

    /// Converts back to triplets (diagonal positions always present).
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = self.off.to_triplets();
        for (i, &v) in self.diag.iter().enumerate() {
            t.push(i, i, v);
        }
        t.normalize();
        t
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.n + self.off.nnz()
    }
}

impl SparseMatrix for DiagSplit<f64> {
    fn nrows(&self) -> usize {
        self.n
    }
    fn ncols(&self) -> usize {
        self.n
    }
    fn nnz(&self) -> usize {
        self.n + SparseMatrix::nnz(&self.off)
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        if r == c {
            self.diag[r]
        } else {
            self.off.get(r, c)
        }
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        if r == c {
            self.diag[r] = v;
        } else {
            self.off.set(r, c, v);
        }
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = self.off.entries();
        out.extend(self.diag.iter().enumerate().map(|(i, &v)| (i, i, v)));
        out
    }
}

/// The diag-split index structure:
/// `(map{i |-> r, i |-> c : i -> v}) ∪ (r -> c -> v)`.
pub fn diagsplit_format_view() -> FormatView {
    let diag = ViewExpr::Map {
        fwd: vec![
            Transform::Affine {
                out: "r".into(),
                terms: vec![("i".into(), 1)],
                cst: 0,
            },
            Transform::Affine {
                out: "c".into(),
                terms: vec![("i".into(), 1)],
                cst: 0,
            },
        ],
        inv: vec![Transform::Affine {
            out: "i".into(),
            terms: vec![("r".into(), 1)],
            cst: 0,
        }],
        child: Box::new(ViewExpr::interval("i", ViewExpr::Value)),
    };
    let off = ViewExpr::interval(
        "r",
        ViewExpr::level("c", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
    );
    FormatView {
        name: "diagsplit".into(),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::Union(Box::new(diag), Box::new(off)),
        bounds: vec![],
        guarantees: vec![StoredGuarantee::FullDiagonal],
    }
}

impl SparseView for DiagSplit<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = diagsplit_format_view();
        let (b, _) = detect_properties(&self.entries(), self.n, self.n);
        v.bounds = b;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        match (chain, level) {
            // Chain 0: the diagonal, a single interval level.
            (0, 0) => ChainCursor::over_range(0, 0, parent, 0, self.n as i64, reverse),
            // Chain 1: the off-diagonal CSR.
            (1, l) => {
                let mut cur = self.off.cursor(0, l, parent, reverse);
                cur.chain = 1;
                cur
            }
            _ => panic!("diagsplit chain/level out of range"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        match cur.chain {
            0 => {
                if !cur.step() {
                    return false;
                }
                cur.keys = vec![cur.idx];
                cur.pos = cur.idx as usize;
                true
            }
            1 => {
                cur.chain = 0; // borrow the csr implementation
                let ok = {
                    let mut inner = cur.clone();
                    let ok = self.off.advance(&mut inner);
                    *cur = inner;
                    ok
                };
                cur.chain = 1;
                ok
            }
            _ => unreachable!(),
        }
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        match chain {
            0 => {
                let k = keys[0];
                (k >= 0 && k < self.n as i64).then_some(k as usize)
            }
            1 => self.off.search(0, level, parent, keys),
            _ => panic!("diagsplit chain out of range"),
        }
    }

    fn value_at(&self, chain: usize, pos: Position) -> f64 {
        match chain {
            0 => self.diag[pos],
            1 => self.off.values[pos],
            _ => panic!("diagsplit chain out of range"),
        }
    }

    fn set_value_at(&mut self, chain: usize, pos: Position, v: f64) {
        match chain {
            0 => self.diag[pos] = v,
            1 => self.off.values[pos] = v,
            _ => panic!("diagsplit chain out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    fn sample() -> Triplets<f64> {
        Triplets::from_entries(
            3,
            3,
            &[
                (0, 0, 2.0),
                (1, 1, 3.0),
                (2, 2, 4.0),
                (1, 0, -1.0),
                (0, 2, 5.0),
            ],
        )
    }

    #[test]
    fn split_layout() {
        let a = DiagSplit::from_triplets(&sample());
        assert_eq!(a.diag, vec![2.0, 3.0, 4.0]);
        assert_eq!(Csr::<f64>::nnz(&a.off), 2);
        assert_eq!(SparseMatrix::nnz(&a), 5);
    }

    #[test]
    fn missing_diagonal_becomes_structural_zero() {
        let t = Triplets::from_entries(2, 2, &[(1, 0, 1.0)]);
        let a = DiagSplit::from_triplets(&t);
        assert_eq!(a.diag, vec![0.0, 0.0]);
        assert_eq!(SparseMatrix::nnz(&a), 3);
        assert!(a.format_view().has_full_diagonal());
    }

    #[test]
    fn random_access_and_set() {
        let mut a = DiagSplit::from_triplets(&sample());
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(2, 0), 0.0);
        a.set(1, 1, 30.0);
        a.set(0, 2, 50.0);
        assert_eq!(a.get(1, 1), 30.0);
        assert_eq!(a.get(0, 2), 50.0);
    }

    #[test]
    fn union_alternative_conforms() {
        // The single alternative must enumerate diag + offdiag exactly.
        check_view_conformance(&DiagSplit::from_triplets(&sample()), 0).unwrap();
    }

    #[test]
    fn roundtrip() {
        let a = DiagSplit::from_triplets(&sample());
        let b = DiagSplit::from_triplets(&a.to_triplets());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let t = Triplets::<f64>::new(2, 3);
        let _ = DiagSplit::from_triplets(&t);
    }
}
