//! Dense row-major storage — the `(r × c) -> v` view.
//!
//! Dense matrices participate in the same framework as sparse ones: every
//! level is an interval with O(1) indexed access, all positions are
//! stored, and there are no enumeration-order restrictions. The compiler
//! treats a reference to a dense matrix as freely enumerable.

use crate::scalar::Scalar;
use crate::view::{FormatView, StoredGuarantee, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView};

/// Dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense<T: Scalar = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row-major element storage, `data[r * ncols + c]`.
    pub data: Vec<T>,
}

impl<T: Scalar> Dense<T> {
    /// A zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Dense<T> {
        Dense {
            nrows,
            ncols,
            data: vec![T::ZERO; nrows * ncols],
        }
    }

    /// Builds from triplets; unlisted positions are zero.
    pub fn from_triplets(t: &crate::Triplets<T>) -> Dense<T> {
        let mut d = Dense::zeros(t.nrows(), t.ncols());
        for &(r, c, v) in t.entries() {
            d.data[r * d.ncols + c] += v;
        }
        d
    }

    /// Converts to triplets (every position, including zeros, is stored in
    /// a dense matrix; but triplets keep only the nonzero pattern to stay
    /// useful as an interchange form).
    pub fn to_triplets(&self) -> crate::Triplets<T> {
        let mut t = crate::Triplets::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let v = self.data[r * self.ncols + c];
                if v != T::ZERO {
                    t.push(r, c, v);
                }
            }
        }
        t.normalize();
        t
    }

    /// Element reference.
    pub fn at(&self, r: usize, c: usize) -> &T {
        &self.data[r * self.ncols + c]
    }

    /// Mutable element reference.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut T {
        &mut self.data[r * self.ncols + c]
    }
}

impl SparseMatrix for Dense<f64> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.nrows * self.ncols
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.ncols + c]
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.ncols + c] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                out.push((r, c, self.data[r * self.ncols + c]));
            }
        }
        out
    }
}

impl SparseView for Dense<f64> {
    fn format_view(&self) -> FormatView {
        FormatView {
            name: "dense".into(),
            dense_attrs: vec!["r".into(), "c".into()],
            expr: ViewExpr::interval("r", ViewExpr::interval("c", ViewExpr::Value)),
            bounds: vec![],
            guarantees: vec![StoredGuarantee::AllPositions],
        }
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!(chain, 0);
        match level {
            0 => ChainCursor::over_range(chain, 0, parent, 0, self.nrows as i64, reverse),
            1 => ChainCursor::over_range(chain, 1, parent, 0, self.ncols as i64, reverse),
            _ => panic!("dense has 2 levels"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        cur.keys = vec![cur.idx];
        cur.pos = match cur.level {
            0 => cur.idx as usize,
            1 => cur.parent * self.ncols + cur.idx as usize,
            _ => unreachable!(),
        };
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!(chain, 0);
        let k = keys[0];
        if k < 0 {
            return None;
        }
        match level {
            0 => (k < self.nrows as i64).then_some(k as usize),
            1 => (k < self.ncols as i64).then_some(parent * self.ncols + k as usize),
            _ => panic!("dense has 2 levels"),
        }
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.data[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.data[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;
    use crate::Triplets;

    #[test]
    fn basic_access() {
        let mut d = Dense::<f64>::zeros(2, 3);
        d.set(1, 2, 5.0);
        assert_eq!(d.get(1, 2), 5.0);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.nnz(), 6);
        *d.at_mut(0, 1) = 7.0;
        assert_eq!(*d.at(0, 1), 7.0);
    }

    #[test]
    fn triplet_roundtrip() {
        let t = Triplets::from_entries(2, 2, &[(0, 1, 3.0), (1, 0, -2.0)]);
        let d = Dense::from_triplets(&t);
        assert_eq!(d.to_triplets(), t);
    }

    #[test]
    fn view_conformance() {
        let t = Triplets::from_entries(3, 4, &[(0, 1, 3.0), (2, 3, -2.0)]);
        let d = Dense::from_triplets(&t);
        check_view_conformance(&d, 0).unwrap();
    }

    #[test]
    fn reverse_cursor() {
        let d = Dense::<f64>::zeros(3, 1);
        let mut cur = d.cursor(0, 0, 0, true);
        let mut seen = Vec::new();
        while d.advance(&mut cur) {
            seen.push(cur.keys[0]);
        }
        assert_eq!(seen, vec![2, 1, 0]);
    }

    #[test]
    fn search_out_of_range() {
        let d = Dense::<f64>::zeros(2, 2);
        assert_eq!(d.search(0, 0, 0, &[5]), None);
        assert_eq!(d.search(0, 0, 0, &[-1]), None);
        assert_eq!(d.search(0, 1, 1, &[1]), Some(3));
    }
}
