//! Block Sparse Row storage — fixed `r x c` blocks, `r -> c -> v` view.
//!
//! The two-level blocked layout of the NIST Sparse BLAS: the matrix is
//! tiled into aligned `r x c` blocks, and every block containing at
//! least one nonzero is stored *dense* (zeros inside a stored block are
//! structural fill-in). Block rows index their blocks CSR-style
//! (`browptr`/`bcolind`), and block values are laid out row-major within
//! each block, so one logical row of a block is contiguous — the shape
//! the register-tiled kernels and the emitted loops both exploit.

use crate::scalar::Scalar;
use crate::view::{detect_properties, FormatView, Order, SearchKind, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Block Sparse Row matrix with fixed `r x c` blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct Bsr<T: Scalar = f64> {
    /// Number of rows (`nrows % r == 0`).
    pub nrows: usize,
    /// Number of columns (`ncols % c == 0`).
    pub ncols: usize,
    /// Block height.
    pub r: usize,
    /// Block width.
    pub c: usize,
    /// `browptr[br]..browptr[br+1]` indexes the blocks of block row `br`
    /// (`len == nrows / r + 1`).
    pub browptr: Vec<usize>,
    /// Block column of each stored block, sorted within each block row.
    pub bcolind: Vec<usize>,
    /// Dense block storage, row-major within each block:
    /// `A[br*r + rr][bcolind[b]*c + cc] = values[(b*r + rr)*c + cc]`.
    pub values: Vec<T>,
}

impl<T: Scalar> Bsr<T> {
    /// Builds from triplets with the given block shape. Every block that
    /// contains at least one entry is stored dense (fill-in).
    ///
    /// # Panics
    /// Panics if `r`/`c` are zero or do not divide the matrix shape.
    pub fn from_triplets(t: &Triplets<T>, r: usize, c: usize) -> Bsr<T> {
        assert!(r > 0 && c > 0, "bsr block shape must be nonzero");
        assert!(
            t.nrows().is_multiple_of(r) && t.ncols().is_multiple_of(c),
            "bsr block shape {r}x{c} must divide the matrix shape {}x{}",
            t.nrows(),
            t.ncols()
        );
        let mut t = t.clone();
        t.normalize();
        let nbr = t.nrows() / r;
        let mut blocks: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        for &(row, col, _) in t.entries() {
            blocks.insert((row / r, col / c));
        }
        let mut browptr = vec![0usize; nbr + 1];
        let mut bcolind = Vec::with_capacity(blocks.len());
        for &(br, bc) in &blocks {
            browptr[br + 1] += 1;
            bcolind.push(bc);
        }
        for br in 0..nbr {
            browptr[br + 1] += browptr[br];
        }
        let mut values = vec![T::ZERO; blocks.len() * r * c];
        let mut out = Bsr {
            nrows: t.nrows(),
            ncols: t.ncols(),
            r,
            c,
            browptr,
            bcolind,
            values: Vec::new(),
        };
        for &(row, col, v) in t.entries() {
            let Some(i) = out.find(row, col) else {
                unreachable!("entry block is stored by construction");
            };
            values[i] = v;
        }
        out.values = values;
        out
    }

    /// Converts back to triplets (in-block zeros are kept: structural).
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.nrows, self.ncols);
        for br in 0..self.nrows / self.r {
            for b in self.browptr[br]..self.browptr[br + 1] {
                let c0 = self.bcolind[b] * self.c;
                for rr in 0..self.r {
                    for cc in 0..self.c {
                        t.push(
                            br * self.r + rr,
                            c0 + cc,
                            self.values[(b * self.r + rr) * self.c + cc],
                        );
                    }
                }
            }
        }
        t.normalize();
        t
    }

    /// Checks the structural invariants of an *untrusted* BSR instance:
    /// block shape divides the matrix shape, `browptr` is monotone from 0
    /// to the block count, block columns are in range and strictly
    /// increasing per block row, and storage covers every stored block.
    pub fn validate(&self) -> Result<(), crate::FormatError> {
        let fail = |reason: String| Err(crate::convert::invalid("bsr", reason));
        if self.r == 0 || self.c == 0 {
            return fail(format!("zero block shape {}x{}", self.r, self.c));
        }
        if !self.nrows.is_multiple_of(self.r) || !self.ncols.is_multiple_of(self.c) {
            return fail(format!(
                "block shape {}x{} does not divide matrix shape {}x{}",
                self.r, self.c, self.nrows, self.ncols
            ));
        }
        let nbr = self.nrows / self.r;
        if self.browptr.len() != nbr + 1 {
            return fail(format!(
                "browptr has {} entries, want nbr + 1 = {}",
                self.browptr.len(),
                nbr + 1
            ));
        }
        if self.browptr[0] != 0 {
            return fail(format!("browptr[0] = {}, want 0", self.browptr[0]));
        }
        if self.browptr[nbr] != self.bcolind.len() {
            return fail(format!(
                "browptr ends at {}, want the block count {}",
                self.browptr[nbr],
                self.bcolind.len()
            ));
        }
        if self.values.len() != self.bcolind.len() * self.r * self.c {
            return fail(format!(
                "values has {} entries, want nblocks * r * c = {}",
                self.values.len(),
                self.bcolind.len() * self.r * self.c
            ));
        }
        let nbc = self.ncols / self.c;
        for br in 0..nbr {
            let (lo, hi) = (self.browptr[br], self.browptr[br + 1]);
            if lo > hi {
                return fail(format!("browptr decreases at block row {br} ({lo} > {hi})"));
            }
            for b in lo..hi {
                if self.bcolind[b] >= nbc {
                    return fail(format!(
                        "block row {br} stores block column {} >= {nbc}",
                        self.bcolind[b]
                    ));
                }
                if b > lo && self.bcolind[b] <= self.bcolind[b - 1] {
                    return fail(format!(
                        "block row {br} block columns not strictly increasing"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Storage index of `(row, col)`, if its block is stored.
    pub fn find(&self, row: usize, col: usize) -> Option<usize> {
        let br = row / self.r;
        let lo = self.browptr[br];
        let hi = self.browptr[br + 1];
        self.bcolind[lo..hi]
            .binary_search(&(col / self.c))
            .ok()
            .map(|k| ((lo + k) * self.r + row % self.r) * self.c + col % self.c)
    }

    /// Number of stored entries (block cells, including in-block zeros).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of stored blocks.
    pub fn nblocks(&self) -> usize {
        self.bcolind.len()
    }

    /// Fill-in ratio: stored cells / cells that came from actual entries.
    /// 1.0 means every stored block is fully dense.
    pub fn fill_ratio(&self, source_nnz: usize) -> f64 {
        if source_nnz == 0 {
            return 1.0;
        }
        self.values.len() as f64 / source_nnz as f64
    }

    /// Splits the *logical rows* into at most `nblocks` contiguous spans
    /// of approximately equal stored-entry count, with every boundary
    /// aligned to a block row (so parallel workers never share a block;
    /// see [`crate::partition::split_ptr_by_cost`]). Deterministic.
    pub fn partition_rows(&self, nblocks: usize) -> Vec<usize> {
        crate::partition::split_ptr_by_cost(&self.browptr, nblocks)
            .into_iter()
            .map(|b| b * self.r)
            .collect()
    }
}

impl SparseMatrix for Bsr<f64> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.find(r, c).map_or(0.0, |i| self.values[i])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self
            .find(r, c)
            .unwrap_or_else(|| panic!("({r},{c}) is not inside a stored block"));
        self.values[i] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for br in 0..self.nrows / self.r {
            for b in self.browptr[br]..self.browptr[br + 1] {
                let c0 = self.bcolind[b] * self.c;
                for rr in 0..self.r {
                    for cc in 0..self.c {
                        out.push((
                            br * self.r + rr,
                            c0 + cc,
                            self.values[(b * self.r + rr) * self.c + cc],
                        ));
                    }
                }
            }
        }
        out.sort_by_key(|&(r, c, _)| (r, c));
        out
    }
}

/// The BSR index structure seen *per logical row*: `r -> c -> v`, `r` an
/// interval with direct access, `c` increasing with binary search (block
/// columns are sorted, and columns within a block ascend). The block
/// shape is carried in the view name (`bsr{r}x{c}`) so the emitter can
/// unroll the within-block loop with literal bounds.
pub fn bsr_format_view(r: usize, c: usize) -> FormatView {
    FormatView {
        name: format!("bsr{r}x{c}"),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::interval(
            "r",
            ViewExpr::level("c", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
        ),
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for Bsr<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = bsr_format_view(self.r, self.c);
        let (b, g) = detect_properties(&self.entries(), self.nrows, self.ncols);
        v.bounds = b;
        v.guarantees = g;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!(chain, 0);
        match level {
            0 => ChainCursor::over_range(chain, 0, parent, 0, self.nrows as i64, reverse),
            1 => {
                assert!(!reverse, "bsr column level enumerates forward only");
                // The raw index ranges over (block ordinal * c + in-block
                // column) for the parent row's block row.
                let br = parent / self.r;
                ChainCursor::over_range(
                    chain,
                    1,
                    parent,
                    (self.browptr[br] * self.c) as i64,
                    (self.browptr[br + 1] * self.c) as i64,
                    false,
                )
            }
            _ => unreachable!("bsr has 2 levels"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        match cur.level {
            0 => {
                cur.keys = vec![cur.idx];
                cur.pos = cur.idx as usize;
            }
            1 => {
                let b = cur.idx as usize / self.c;
                let s = cur.idx as usize % self.c;
                cur.keys = vec![(self.bcolind[b] * self.c + s) as i64];
                cur.pos = (b * self.r + cur.parent % self.r) * self.c + s;
            }
            _ => unreachable!(),
        }
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!(chain, 0);
        let k = keys[0];
        if k < 0 {
            return None;
        }
        match level {
            0 => (k < self.nrows as i64).then_some(k as usize),
            1 => self.find(parent, k as usize),
            _ => unreachable!("bsr has 2 levels"),
        }
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    fn sample() -> Triplets<f64> {
        // 4x4 with 2x2 blocks at (0,0), (0,1) and (1,1); block (0,1) is
        // half-filled → fill-in.
        Triplets::from_entries(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0),
                (0, 2, 5.0),
                (2, 2, 6.0),
                (3, 3, 7.0),
            ],
        )
    }

    #[test]
    fn layout() {
        let a = Bsr::from_triplets(&sample(), 2, 2);
        assert_eq!(a.browptr, vec![0, 2, 3]);
        assert_eq!(a.bcolind, vec![0, 1, 1]);
        assert_eq!(a.nblocks(), 3);
        assert_eq!(a.nnz(), 12);
        // Block (0,0) row-major.
        assert_eq!(&a.values[0..4], &[1.0, 2.0, 3.0, 4.0]);
        // Block (0,1): only (0,2) set, rest structural zeros.
        assert_eq!(&a.values[4..8], &[5.0, 0.0, 0.0, 0.0]);
        assert!(a.find(1, 3).is_some(), "in-block zero is structural");
        assert_eq!(a.fill_ratio(7), 12.0 / 7.0);
        let r = a.validate();
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn random_access() {
        let a = Bsr::from_triplets(&sample(), 2, 2);
        assert_eq!(a.get(0, 2), 5.0);
        assert_eq!(a.get(1, 3), 0.0);
        assert_eq!(a.get(3, 3), 7.0);
        assert_eq!(a.get(2, 0), 0.0);
        assert!(a.find(2, 0).is_none(), "block (1,0) not stored");
    }

    #[test]
    fn roundtrip() {
        let a = Bsr::from_triplets(&sample(), 2, 2);
        let b = Bsr::from_triplets(&a.to_triplets(), 2, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn view_conformance() {
        for (r, c) in [(2, 2), (4, 2), (1, 1)] {
            let res = check_view_conformance(&Bsr::from_triplets(&sample(), r, c), 0);
            assert!(res.is_ok(), "{r}x{c}: {res:?}");
        }
    }

    #[test]
    fn column_cursor_sorted() {
        let a = Bsr::from_triplets(&sample(), 2, 2);
        let mut cur = a.cursor(0, 1, 0, false);
        let mut cols = Vec::new();
        while a.advance(&mut cur) {
            cols.push(cur.keys[0]);
        }
        assert_eq!(cols, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_shape_rejected() {
        let t = Triplets::from_entries(3, 3, &[(0, 0, 1.0)]);
        let _ = Bsr::from_triplets(&t, 2, 2);
    }

    #[test]
    fn validate_rejects_corrupt() {
        let mut a = Bsr::from_triplets(&sample(), 2, 2);
        a.bcolind[1] = 9;
        assert!(a.validate().is_err());
        let mut b = Bsr::from_triplets(&sample(), 2, 2);
        b.browptr[1] = 5;
        assert!(b.validate().is_err());
    }

    #[test]
    fn view_name_carries_block_shape() {
        let a = Bsr::from_triplets(&sample(), 2, 2);
        assert_eq!(a.format_view().name, "bsr2x2");
        let b = Bsr::from_triplets(&sample(), 4, 4);
        assert_eq!(b.format_view().name, "bsr4x4");
    }
}
