//! Sparse vectors — `i -> v` views used by the common-enumeration (join)
//! experiments.
//!
//! Two variants with the *same* abstract content but different enumeration
//! properties, exactly the situation where the compiler's join-strategy
//! choice matters (paper §4.1, citing the relational formulation of \[11\]):
//!
//! - [`SparseVec`]: indices sorted — increasing enumeration and binary
//!   search; two of these can be combined with a **merge join**;
//! - [`HashVec`]: indices unordered with a hash index — O(1) expected
//!   search; the natural partner of a **hash join**.
//!
//! Vectors are modelled as `n × 1` matrices so they share the
//! [`SparseMatrix`]/[`SparseView`] machinery (dense attribute `i`).

use crate::scalar::Scalar;
use crate::view::{FormatView, Order, SearchKind, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};
use std::collections::HashMap;

/// Sorted sparse vector.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec<T: Scalar = f64> {
    /// Logical length.
    pub n: usize,
    /// Stored indices, strictly increasing.
    pub ind: Vec<usize>,
    /// Stored values.
    pub values: Vec<T>,
}

impl<T: Scalar> SparseVec<T> {
    /// Builds from (index, value) pairs; duplicates are summed.
    pub fn from_pairs(n: usize, pairs: &[(usize, T)]) -> SparseVec<T> {
        let mut sorted: Vec<(usize, T)> = pairs.to_vec();
        sorted.sort_by_key(|&(i, _)| i);
        let mut ind = Vec::with_capacity(sorted.len());
        let mut values: Vec<T> = Vec::with_capacity(sorted.len());
        for (i, v) in sorted {
            assert!(i < n, "index {i} out of range");
            // `ind` and `values` grow in lock-step, so a duplicate
            // index always has a value to accumulate into.
            if let (Some(&last), Some(acc)) = (ind.last(), values.last_mut()) {
                if last == i {
                    *acc += v;
                    continue;
                }
            }
            ind.push(i);
            values.push(v);
        }
        SparseVec { n, ind, values }
    }

    /// Builds a vector holding the stored entries of column 0 of `t`.
    pub fn from_triplets(t: &Triplets<T>) -> SparseVec<T> {
        let pairs: Vec<(usize, T)> = t.entries().iter().map(|&(r, _, v)| (r, v)).collect();
        SparseVec::from_pairs(t.nrows(), &pairs)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Binary search for index `i`.
    pub fn find(&self, i: usize) -> Option<usize> {
        self.ind.binary_search(&i).ok()
    }
}

impl SparseMatrix for SparseVec<f64> {
    fn nrows(&self) -> usize {
        self.n
    }
    fn ncols(&self) -> usize {
        1
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        assert_eq!(c, 0);
        self.find(r).map_or(0.0, |k| self.values[k])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        assert_eq!(c, 0);
        let k = self
            .find(r)
            .unwrap_or_else(|| panic!("index {r} is not stored"));
        self.values[k] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        self.ind
            .iter()
            .zip(&self.values)
            .map(|(&i, &v)| (i, 0, v))
            .collect()
    }
}

/// The sorted sparse-vector view: `i -> v`, increasing, binary search.
pub fn sparsevec_format_view() -> FormatView {
    FormatView {
        name: "spvec".into(),
        dense_attrs: vec!["i".into()],
        expr: ViewExpr::level("i", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for SparseVec<f64> {
    fn format_view(&self) -> FormatView {
        sparsevec_format_view()
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!((chain, level), (0, 0), "sparse vector has one level");
        assert!(!reverse, "sparse vector enumerates forward only");
        ChainCursor::over_range(0, 0, parent, 0, self.nnz() as i64, false)
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        cur.keys = vec![self.ind[cur.idx as usize] as i64];
        cur.pos = cur.idx as usize;
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        _parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!((chain, level), (0, 0));
        if keys[0] < 0 {
            return None;
        }
        self.find(keys[0] as usize)
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }
}

/// Hash-indexed sparse vector: unordered enumeration, O(1) search.
#[derive(Clone, Debug)]
pub struct HashVec<T: Scalar = f64> {
    /// Logical length.
    pub n: usize,
    /// Stored indices, in insertion order (no order guarantee).
    pub ind: Vec<usize>,
    /// Stored values.
    pub values: Vec<T>,
    /// Index → storage-slot map.
    pub index: HashMap<usize, usize>,
}

impl<T: Scalar> HashVec<T> {
    /// Builds from (index, value) pairs; duplicates are summed.
    pub fn from_pairs(n: usize, pairs: &[(usize, T)]) -> HashVec<T> {
        let mut hv = HashVec {
            n,
            ind: Vec::new(),
            values: Vec::new(),
            index: HashMap::new(),
        };
        for &(i, v) in pairs {
            assert!(i < n, "index {i} out of range");
            match hv.index.get(&i) {
                Some(&slot) => hv.values[slot] += v,
                None => {
                    hv.index.insert(i, hv.ind.len());
                    hv.ind.push(i);
                    hv.values.push(v);
                }
            }
        }
        hv
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

impl SparseMatrix for HashVec<f64> {
    fn nrows(&self) -> usize {
        self.n
    }
    fn ncols(&self) -> usize {
        1
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        assert_eq!(c, 0);
        self.index.get(&r).map_or(0.0, |&k| self.values[k])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        assert_eq!(c, 0);
        let k = *self
            .index
            .get(&r)
            .unwrap_or_else(|| panic!("index {r} is not stored"));
        self.values[k] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        self.ind
            .iter()
            .zip(&self.values)
            .map(|(&i, &v)| (i, 0, v))
            .collect()
    }
}

/// The hashed sparse-vector view: `i -> v`, unordered, hash search.
pub fn hashvec_format_view() -> FormatView {
    FormatView {
        name: "hashvec".into(),
        dense_attrs: vec!["i".into()],
        expr: ViewExpr::level("i", Order::Unordered, SearchKind::Hash, ViewExpr::Value),
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for HashVec<f64> {
    fn format_view(&self) -> FormatView {
        hashvec_format_view()
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!((chain, level), (0, 0), "hash vector has one level");
        assert!(!reverse, "hash vector enumerates in storage order only");
        ChainCursor::over_range(0, 0, parent, 0, self.nnz() as i64, false)
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        cur.keys = vec![self.ind[cur.idx as usize] as i64];
        cur.pos = cur.idx as usize;
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        _parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!((chain, level), (0, 0));
        if keys[0] < 0 {
            return None;
        }
        self.index.get(&(keys[0] as usize)).copied()
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    #[test]
    fn sorted_vector() {
        let v = SparseVec::from_pairs(10, &[(7, 2.0), (1, 1.0), (7, 3.0)]);
        assert_eq!(v.ind, vec![1, 7]);
        assert_eq!(v.values, vec![1.0, 5.0]);
        assert_eq!(v.get(7, 0), 5.0);
        assert_eq!(v.get(2, 0), 0.0);
        check_view_conformance(&v, 0).unwrap();
    }

    #[test]
    fn hashed_vector() {
        let v = HashVec::from_pairs(10, &[(7, 2.0), (1, 1.0), (7, 3.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(7, 0), 5.0);
        assert_eq!(v.get(2, 0), 0.0);
        check_view_conformance(&v, 0).unwrap();
    }

    #[test]
    fn search_kinds() {
        let sv = SparseVec::from_pairs(10, &[(3, 1.0), (6, 2.0)]);
        let hv = HashVec::from_pairs(10, &[(3, 1.0), (6, 2.0)]);
        assert_eq!(
            sv.search(0, 0, 0, &[6]).map(|p| sv.value_at(0, p)),
            Some(2.0)
        );
        assert_eq!(
            hv.search(0, 0, 0, &[6]).map(|p| hv.value_at(0, p)),
            Some(2.0)
        );
        assert_eq!(sv.search(0, 0, 0, &[5]), None);
        assert_eq!(hv.search(0, 0, 0, &[5]), None);
        assert_eq!(
            sv.format_view().alternatives()[0][0].levels[0].search,
            SearchKind::Sorted
        );
        assert_eq!(
            hv.format_view().alternatives()[0][0].levels[0].search,
            SearchKind::Hash
        );
    }

    #[test]
    fn set_values() {
        let mut sv = SparseVec::from_pairs(4, &[(2, 1.0)]);
        sv.set(2, 0, 9.0);
        assert_eq!(sv.get(2, 0), 9.0);
        let mut hv = HashVec::from_pairs(4, &[(2, 1.0)]);
        hv.set(2, 0, 9.0);
        assert_eq!(hv.get(2, 0), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range() {
        let _ = SparseVec::from_pairs(3, &[(3, 1.0)]);
    }
}
