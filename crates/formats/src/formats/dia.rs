//! Diagonal storage — the `map{d + o |-> r, o |-> c : d -> o -> v}` view.
//!
//! Only diagonals containing nonzeros are stored; elements are addressed
//! by diagonal number `d = r - c` and offset `o = c` (paper Fig. 2). Every
//! position along a stored diagonal that lies inside the matrix is
//! structural — the padding zeros of a banded format are stored entries.

use crate::scalar::Scalar;
use crate::view::{detect_properties, FormatView, Order, SearchKind, Transform, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Diagonal (banded) matrix storage.
#[derive(Clone, Debug, PartialEq)]
pub struct Dia<T: Scalar = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Sorted distinct stored diagonal numbers `d = r - c`.
    pub diags: Vec<i64>,
    /// Per diagonal: first stored offset `o` (inclusive).
    pub lo: Vec<i64>,
    /// Per diagonal: last stored offset `o` (exclusive).
    pub hi: Vec<i64>,
    /// Per diagonal: start of its strip in `values` (`len == diags.len()+1`).
    pub ptr: Vec<usize>,
    /// Strip storage: the value of element `(d+o, o)` of diagonal `k` is
    /// `values[ptr[k] + (o - lo[k])]`.
    pub values: Vec<T>,
}

impl<T: Scalar> Dia<T> {
    /// Builds from triplets: every diagonal containing at least one entry
    /// is stored in full (its in-matrix extent), padded with zeros.
    pub fn from_triplets(t: &Triplets<T>) -> Dia<T> {
        let mut t = t.clone();
        t.normalize();
        let (m, n) = (t.nrows(), t.ncols());
        let mut diags: Vec<i64> = t
            .entries()
            .iter()
            .map(|&(r, c, _)| r as i64 - c as i64)
            .collect();
        diags.sort_unstable();
        diags.dedup();
        let mut lo = Vec::with_capacity(diags.len());
        let mut hi = Vec::with_capacity(diags.len());
        let mut ptr = Vec::with_capacity(diags.len() + 1);
        ptr.push(0usize);
        for &d in &diags {
            let l = 0i64.max(-d);
            let h = (n as i64).min(m as i64 - d);
            debug_assert!(l < h, "diagonal {d} has empty extent");
            lo.push(l);
            hi.push(h);
            ptr.push(ptr[ptr.len() - 1] + (h - l) as usize);
        }
        let mut values = vec![T::ZERO; ptr[ptr.len() - 1]];
        for &(r, c, v) in t.entries() {
            let d = r as i64 - c as i64;
            let k = diags.binary_search(&d).unwrap();
            values[ptr[k] + (c as i64 - lo[k]) as usize] = v;
        }
        Dia {
            nrows: m,
            ncols: n,
            diags,
            lo,
            hi,
            ptr,
            values,
        }
    }

    /// Converts back to triplets. Padding zeros are *kept* as structural
    /// entries so that `nnz` round-trips; use
    /// [`Triplets::retain_positions`] to drop them if undesired.
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.nrows, self.ncols);
        for k in 0..self.diags.len() {
            let d = self.diags[k];
            for o in self.lo[k]..self.hi[k] {
                let v = self.values[self.ptr[k] + (o - self.lo[k]) as usize];
                t.push((d + o) as usize, o as usize, v);
            }
        }
        t.normalize();
        t
    }

    /// Checks the structural invariants of an *untrusted* DIA instance:
    /// strictly increasing diagonal numbers, per-diagonal extents that
    /// match the matrix shape exactly (this format always stores a
    /// diagonal's full in-matrix extent), and a `ptr` array consistent
    /// with those extents and the value storage.
    pub fn validate(&self) -> Result<(), crate::FormatError> {
        let fail = |reason: String| Err(crate::convert::invalid("dia", reason));
        let k = self.diags.len();
        if self.lo.len() != k || self.hi.len() != k || self.ptr.len() != k + 1 {
            return fail(format!(
                "lo/hi/ptr have {}/{}/{} entries, want {k}/{k}/{}",
                self.lo.len(),
                self.hi.len(),
                self.ptr.len(),
                k + 1
            ));
        }
        if self.ptr.first() != Some(&0) {
            return fail(format!("ptr[0] = {:?}, want 0", self.ptr.first()));
        }
        let (m, n) = (self.nrows as i64, self.ncols as i64);
        for i in 0..k {
            let d = self.diags[i];
            if i > 0 && d <= self.diags[i - 1] {
                return fail(format!("diagonals not strictly increasing at {d}"));
            }
            let (lo, hi) = (0i64.max(-d), n.min(m - d));
            if lo >= hi {
                return fail(format!("diagonal {d} lies outside a {m}x{n} matrix"));
            }
            if self.lo[i] != lo || self.hi[i] != hi {
                return fail(format!(
                    "diagonal {d} extent [{}, {}) disagrees with shape (want [{lo}, {hi}))",
                    self.lo[i], self.hi[i]
                ));
            }
            let want = self.ptr[i] + (hi - lo) as usize;
            if self.ptr[i + 1] != want {
                return fail(format!(
                    "ptr[{}] = {} disagrees with diagonal {d}'s extent (want {want})",
                    i + 1,
                    self.ptr[i + 1]
                ));
            }
        }
        if self.values.len() != self.ptr[self.diags.len()] {
            return fail(format!(
                "values has {} entries, want ptr total {}",
                self.values.len(),
                self.ptr[self.diags.len()]
            ));
        }
        Ok(())
    }

    /// Storage index of `(r, c)` if its diagonal is stored.
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let d = r as i64 - c as i64;
        let k = self.diags.binary_search(&d).ok()?;
        let o = c as i64;
        (o >= self.lo[k] && o < self.hi[k]).then(|| self.ptr[k] + (o - self.lo[k]) as usize)
    }

    /// Number of stored entries (including in-band padding zeros).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of stored diagonals.
    pub fn ndiags(&self) -> usize {
        self.diags.len()
    }
}

impl SparseMatrix for Dia<f64> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.find(r, c).map_or(0.0, |i| self.values[i])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self
            .find(r, c)
            .unwrap_or_else(|| panic!("({r},{c}) is not on a stored diagonal"));
        self.values[i] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for k in 0..self.diags.len() {
            let d = self.diags[k];
            for o in self.lo[k]..self.hi[k] {
                out.push((
                    (d + o) as usize,
                    o as usize,
                    self.values[self.ptr[k] + (o - self.lo[k]) as usize],
                ));
            }
        }
        out
    }
}

/// The DIA index structure (paper §2):
/// `map{d + o |-> r, o |-> c : d -> o -> v}`.
pub fn dia_format_view() -> FormatView {
    FormatView {
        name: "dia".into(),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::Map {
            fwd: vec![
                Transform::Affine {
                    out: "r".into(),
                    terms: vec![("d".into(), 1), ("o".into(), 1)],
                    cst: 0,
                },
                Transform::Affine {
                    out: "c".into(),
                    terms: vec![("o".into(), 1)],
                    cst: 0,
                },
            ],
            inv: vec![
                Transform::Affine {
                    out: "d".into(),
                    terms: vec![("r".into(), 1), ("c".into(), -1)],
                    cst: 0,
                },
                Transform::Affine {
                    out: "o".into(),
                    terms: vec![("c".into(), 1)],
                    cst: 0,
                },
            ],
            child: Box::new(ViewExpr::level(
                "d",
                Order::Increasing,
                SearchKind::Sorted,
                ViewExpr::Level {
                    attrs: vec!["o".into()],
                    order: Order::Increasing,
                    search: SearchKind::Direct,
                    interval: true,
                    child: Box::new(ViewExpr::Value),
                },
            )),
        },
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for Dia<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = dia_format_view();
        let (b, g) = detect_properties(&self.entries(), self.nrows, self.ncols);
        v.bounds = b;
        v.guarantees = g;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!(chain, 0);
        match level {
            0 => {
                assert!(!reverse, "dia diagonal level enumerates forward only");
                ChainCursor::over_range(chain, 0, parent, 0, self.diags.len() as i64, false)
            }
            1 => {
                ChainCursor::over_range(chain, 1, parent, self.lo[parent], self.hi[parent], reverse)
            }
            _ => panic!("dia has 2 levels"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        match cur.level {
            0 => {
                cur.keys = vec![self.diags[cur.idx as usize]];
                cur.pos = cur.idx as usize;
            }
            1 => {
                let k = cur.parent;
                cur.keys = vec![cur.idx];
                cur.pos = self.ptr[k] + (cur.idx - self.lo[k]) as usize;
            }
            _ => unreachable!(),
        }
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!(chain, 0);
        match level {
            0 => self.diags.binary_search(&keys[0]).ok(),
            1 => {
                let o = keys[0];
                (o >= self.lo[parent] && o < self.hi[parent])
                    .then(|| self.ptr[parent] + (o - self.lo[parent]) as usize)
            }
            _ => panic!("dia has 2 levels"),
        }
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;

    /// Tridiagonal 4x4.
    fn tri() -> Triplets<f64> {
        let mut t = Triplets::new(4, 4);
        for i in 0..4usize {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < 4 {
                t.push(i, i + 1, -1.0);
            }
        }
        t.normalize();
        t
    }

    #[test]
    fn diagonals_detected() {
        let a = Dia::from_triplets(&tri());
        assert_eq!(a.diags, vec![-1, 0, 1]);
        assert_eq!(a.ndiags(), 3);
        // superdiag has extent o in [1,4), main [0,4), subdiag [0,3)
        assert_eq!(a.lo, vec![1, 0, 0]);
        assert_eq!(a.hi, vec![4, 4, 3]);
        assert_eq!(a.nnz(), 3 + 4 + 3);
    }

    #[test]
    fn random_access() {
        let a = Dia::from_triplets(&tri());
        assert_eq!(a.get(1, 1), 2.0);
        assert_eq!(a.get(2, 1), -1.0);
        assert_eq!(a.get(0, 2), 0.0); // unstored diagonal
        assert_eq!(a.get(3, 0), 0.0);
    }

    #[test]
    fn padding_is_structural() {
        // Single entry at (2, 0): diagonal d=2 stored in full extent.
        let t = Triplets::from_entries(4, 4, &[(2, 0, 5.0)]);
        let a = Dia::from_triplets(&t);
        assert_eq!(a.diags, vec![2]);
        assert_eq!(a.nnz(), 2); // (2,0) and (3,1)
        assert_eq!(a.get(3, 1), 0.0);
        let mut b = a.clone();
        b.set(3, 1, 7.0); // padded position is settable
        assert_eq!(b.get(3, 1), 7.0);
    }

    #[test]
    fn roundtrip() {
        let a = Dia::from_triplets(&tri());
        let back = Dia::from_triplets(&a.to_triplets());
        assert_eq!(a.diags, back.diags);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(a.get(r, c), back.get(r, c));
            }
        }
    }

    #[test]
    fn view_conformance() {
        check_view_conformance(&Dia::from_triplets(&tri()), 0).unwrap();
    }

    #[test]
    fn offset_level_reverse() {
        let a = Dia::from_triplets(&tri());
        let k = a.diags.binary_search(&0).unwrap();
        let mut cur = a.cursor(0, 1, k, true);
        let mut offs = Vec::new();
        while a.advance(&mut cur) {
            offs.push(cur.keys[0]);
        }
        assert_eq!(offs, vec![3, 2, 1, 0]);
    }

    #[test]
    fn search_levels() {
        let a = Dia::from_triplets(&tri());
        let k = a.search(0, 0, 0, &[1]).unwrap(); // superdiagonal d=1? note d = r - c, so d=1 is SUBdiagonal
        assert_eq!(a.diags[k], 1);
        let p = a.search(0, 1, k, &[0]).unwrap(); // (r,c) = (1, 0)
        assert_eq!(a.value_at(0, p), -1.0);
        assert!(a.search(0, 0, 0, &[5]).is_none());
        assert!(a.search(0, 1, k, &[3]).is_none()); // o=3 -> r=4 out of range
    }
}
