//! Compressed Sparse Column storage — the `c -> r -> v` view.
//!
//! CSC is the transpose of CSR: indexed access to columns, ordered
//! enumeration of the rows within each column.

use crate::scalar::Scalar;
use crate::view::{detect_properties, FormatView, Order, SearchKind, ViewExpr};
use crate::{ChainCursor, Position, SparseMatrix, SparseView, Triplets};

/// Compressed Sparse Column matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc<T: Scalar = f64> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// `colptr[c]..colptr[c+1]` indexes the entries of column `c`
    /// (`len == ncols + 1`).
    pub colptr: Vec<usize>,
    /// Row index of each stored entry, sorted within each column.
    pub rowind: Vec<usize>,
    /// Value of each stored entry.
    pub values: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Builds from triplets.
    pub fn from_triplets(t: &Triplets<T>) -> Csc<T> {
        // Sort column-major via the transpose ordering.
        let mut entries: Vec<(usize, usize, T)> = {
            let mut tt = t.clone();
            tt.normalize();
            tt.entries().to_vec()
        };
        entries.sort_by_key(|&(r, c, _)| (c, r));
        let mut colptr = vec![0usize; t.ncols() + 1];
        for &(_, c, _) in &entries {
            colptr[c + 1] += 1;
        }
        for c in 0..t.ncols() {
            colptr[c + 1] += colptr[c];
        }
        Csc {
            nrows: t.nrows(),
            ncols: t.ncols(),
            colptr,
            rowind: entries.iter().map(|&(r, _, _)| r).collect(),
            values: entries.iter().map(|&(_, _, v)| v).collect(),
        }
    }

    /// Converts back to triplets.
    pub fn to_triplets(&self) -> Triplets<T> {
        let mut t = Triplets::new(self.nrows, self.ncols);
        for c in 0..self.ncols {
            for i in self.col_range(c) {
                t.push(self.rowind[i], c, self.values[i]);
            }
        }
        t.normalize();
        t
    }

    /// Checks the structural invariants of an *untrusted* CSC instance:
    /// the transpose of [`Csr::validate`](crate::Csr::validate) —
    /// monotone `colptr` covering the storage, in-range strictly
    /// increasing row indices within each column.
    pub fn validate(&self) -> Result<(), crate::FormatError> {
        let fail = |reason: String| Err(crate::convert::invalid("csc", reason));
        if self.colptr.len() != self.ncols + 1 {
            return fail(format!(
                "colptr has {} entries, want ncols + 1 = {}",
                self.colptr.len(),
                self.ncols + 1
            ));
        }
        if self.colptr[0] != 0 {
            return fail(format!("colptr[0] = {}, want 0", self.colptr[0]));
        }
        if self.values.len() != self.rowind.len() {
            return fail(format!(
                "values/rowind length mismatch ({} vs {})",
                self.values.len(),
                self.rowind.len()
            ));
        }
        if self.colptr[self.ncols] != self.rowind.len() {
            return fail(format!(
                "colptr ends at {}, want the storage length {}",
                self.colptr[self.ncols],
                self.rowind.len()
            ));
        }
        for c in 0..self.ncols {
            let (lo, hi) = (self.colptr[c], self.colptr[c + 1]);
            if lo > hi {
                return fail(format!("colptr decreases at column {c} ({lo} > {hi})"));
            }
            for i in lo..hi {
                if self.rowind[i] >= self.nrows {
                    return fail(format!(
                        "column {c} stores row {} >= nrows {}",
                        self.rowind[i], self.nrows
                    ));
                }
                if i > lo && self.rowind[i] <= self.rowind[i - 1] {
                    return fail(format!("column {c} rows not strictly increasing"));
                }
            }
        }
        Ok(())
    }

    /// The half-open storage range of column `c`.
    pub fn col_range(&self, c: usize) -> std::ops::Range<usize> {
        self.colptr[c]..self.colptr[c + 1]
    }

    /// Binary-searches column `c` for row `r`.
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let rng = self.col_range(c);
        self.rowind[rng.clone()]
            .binary_search(&r)
            .ok()
            .map(|k| rng.start + k)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Splits the columns into at most `nblocks` contiguous blocks of
    /// approximately equal stored-entry count (see
    /// [`crate::partition::split_ptr_by_cost`]); the boundaries are a
    /// deterministic function of the pattern.
    pub fn partition_cols(&self, nblocks: usize) -> Vec<usize> {
        crate::partition::split_ptr_by_cost(&self.colptr, nblocks)
    }
}

impl SparseMatrix for Csc<f64> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn get(&self, r: usize, c: usize) -> f64 {
        self.find(r, c).map_or(0.0, |i| self.values[i])
    }
    fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self
            .find(r, c)
            .unwrap_or_else(|| panic!("({r},{c}) is not a stored position"));
        self.values[i] = v;
    }
    fn entries(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for c in 0..self.ncols {
            for i in self.col_range(c) {
                out.push((self.rowind[i], c, self.values[i]));
            }
        }
        out
    }
}

/// The CSC index structure: `c -> r -> v`.
pub fn csc_format_view() -> FormatView {
    FormatView {
        name: "csc".into(),
        dense_attrs: vec!["r".into(), "c".into()],
        expr: ViewExpr::interval(
            "c",
            ViewExpr::level("r", Order::Increasing, SearchKind::Sorted, ViewExpr::Value),
        ),
        bounds: vec![],
        guarantees: vec![],
    }
}

impl SparseView for Csc<f64> {
    fn format_view(&self) -> FormatView {
        let mut v = csc_format_view();
        let (b, g) = detect_properties(&self.entries(), self.nrows, self.ncols);
        v.bounds = b;
        v.guarantees = g;
        v
    }

    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor {
        assert_eq!(chain, 0);
        match level {
            0 => ChainCursor::over_range(chain, 0, parent, 0, self.ncols as i64, reverse),
            1 => {
                assert!(!reverse, "csc row level enumerates forward only");
                let rng = self.col_range(parent);
                ChainCursor::over_range(chain, 1, parent, rng.start as i64, rng.end as i64, false)
            }
            _ => panic!("csc has 2 levels"),
        }
    }

    fn advance(&self, cur: &mut ChainCursor) -> bool {
        if !cur.step() {
            return false;
        }
        match cur.level {
            0 => {
                cur.keys = vec![cur.idx];
                cur.pos = cur.idx as usize;
            }
            1 => {
                cur.keys = vec![self.rowind[cur.idx as usize] as i64];
                cur.pos = cur.idx as usize;
            }
            _ => unreachable!(),
        }
        true
    }

    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position> {
        assert_eq!(chain, 0);
        let k = keys[0];
        if k < 0 {
            return None;
        }
        match level {
            0 => (k < self.ncols as i64).then_some(k as usize),
            1 => self.find(k as usize, parent),
            _ => panic!("csc has 2 levels"),
        }
    }

    fn value_at(&self, _chain: usize, pos: Position) -> f64 {
        self.values[pos]
    }

    fn set_value_at(&mut self, _chain: usize, pos: Position, v: f64) {
        self.values[pos] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::check_view_conformance;
    use crate::Csr;

    fn sample_triplets() -> Triplets<f64> {
        Triplets::from_entries(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 1, 4.0),
                (2, 2, 5.0),
                (3, 0, 6.0),
                (3, 3, 7.0),
            ],
        )
    }

    #[test]
    fn layout() {
        let a = Csc::from_triplets(&sample_triplets());
        assert_eq!(a.colptr, vec![0, 2, 4, 6, 7]);
        assert_eq!(a.rowind, vec![0, 3, 1, 2, 0, 2, 3]);
    }

    #[test]
    fn agrees_with_csr() {
        let t = sample_triplets();
        let csc = Csc::from_triplets(&t);
        let csr = Csr::from_triplets(&t);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(csc.get(r, c), csr.get(r, c), "({r},{c})");
            }
        }
    }

    #[test]
    fn triplet_roundtrip() {
        let t = sample_triplets();
        assert_eq!(Csc::from_triplets(&t).to_triplets(), t);
    }

    #[test]
    fn view_conformance() {
        check_view_conformance(&Csc::from_triplets(&sample_triplets()), 0).unwrap();
    }

    #[test]
    fn search_and_set() {
        let mut a = Csc::from_triplets(&sample_triplets());
        let p = a.search(0, 1, 2, &[2]).unwrap(); // column 2, row 2
        assert_eq!(a.value_at(0, p), 5.0);
        a.set(2, 2, 50.0);
        assert_eq!(a.value_at(0, p), 50.0);
        assert_eq!(a.search(0, 1, 2, &[3]), None);
    }

    #[test]
    fn row_cursor_sorted_within_column() {
        let a = Csc::from_triplets(&sample_triplets());
        let mut cur = a.cursor(0, 1, 0, false);
        let mut rows = Vec::new();
        while a.advance(&mut cur) {
            rows.push(cur.keys[0]);
        }
        assert_eq!(rows, vec![0, 3]);
    }
}
