//! Synthetic workload generators.
//!
//! The paper evaluates on `can_1072` from the Harwell–Boeing collection.
//! That file is not redistributable inside this repository, so
//! [`can_1072_like`] synthesizes a deterministic matrix matching the
//! characteristics that matter for TS/MVM performance: order 1072,
//! ≈12444 stored entries, structural symmetry, a full diagonal, and a
//! comparable nonzeros-per-row profile. The remaining generators produce
//! the standard workload families (uniform random, banded, 2-D Poisson)
//! used by the extended experiments.

use crate::Triplets;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniformly random sparse matrix with exactly `nnz` distinct stored
/// positions (values in `[-1, 1)`).
pub fn random_sparse(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Triplets<f64> {
    assert!(
        nnz <= nrows * ncols,
        "requested more entries than positions"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(nnz * 2);
    let mut t = Triplets::new(nrows, ncols);
    while seen.len() < nnz {
        let r = rng.gen_range(0..nrows);
        let c = rng.gen_range(0..ncols);
        if seen.insert((r, c)) {
            t.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    t.normalize();
    t
}

/// Dense band: all entries with `|r - c| <= bandwidth` stored, random
/// values, diagonally dominant. The natural DIA workload.
pub fn banded(n: usize, bandwidth: usize, seed: u64) -> Triplets<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Triplets::new(n, n);
    for r in 0..n {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(n);
        for c in lo..hi {
            let v = if r == c {
                2.0 * (bandwidth as f64 + 1.0)
            } else {
                rng.gen_range(-1.0..1.0)
            };
            t.push(r, c, v);
        }
    }
    t.normalize();
    t
}

/// Tridiagonal `[-1, 2, -1]` matrix (1-D Laplacian).
pub fn tridiagonal(n: usize) -> Triplets<f64> {
    let mut t = Triplets::new(n, n);
    for i in 0..n {
        t.push(i, i, 2.0);
        if i > 0 {
            t.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            t.push(i, i + 1, -1.0);
        }
    }
    t.normalize();
    t
}

/// 5-point-stencil discretization of the 2-D Poisson equation on a
/// `k × k` grid (an SPD matrix of order `k²`).
pub fn poisson2d(k: usize) -> Triplets<f64> {
    let n = k * k;
    let mut t = Triplets::new(n, n);
    let idx = |i: usize, j: usize| i * k + j;
    for i in 0..k {
        for j in 0..k {
            let p = idx(i, j);
            t.push(p, p, 4.0);
            if i > 0 {
                t.push(p, idx(i - 1, j), -1.0);
            }
            if i + 1 < k {
                t.push(p, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                t.push(p, idx(i, j - 1), -1.0);
            }
            if j + 1 < k {
                t.push(p, idx(i, j + 1), -1.0);
            }
        }
    }
    t.normalize();
    t
}

/// Deterministic substitute for the Harwell–Boeing matrix `can_1072`
/// (order 1072, 12444 stored entries, structurally symmetric pattern,
/// full diagonal; see DESIGN.md substitution 1).
///
/// Values are chosen diagonally dominant so that the lower triangle is a
/// well-conditioned triangular-solve operand and CG converges on the full
/// matrix.
pub fn can_1072_like() -> Triplets<f64> {
    structurally_symmetric(1072, 12444, 96, 0xCAA1_1072)
}

/// Structurally symmetric sparse matrix of order `n` with (approximately,
/// within one pair of) `nnz` stored entries, band-concentrated pattern
/// with maximum expected offset `spread`, full diagonal, diagonally
/// dominant values.
pub fn structurally_symmetric(n: usize, nnz: usize, spread: usize, seed: u64) -> Triplets<f64> {
    assert!(nnz >= n, "need at least the diagonal");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let target_offdiag_pairs = (nnz - n) / 2;
    while pairs.len() < target_offdiag_pairs {
        let r = rng.gen_range(0..n);
        // Offsets concentrate near the diagonal (sum of two uniforms →
        // triangular distribution), mimicking a FEM-style connectivity.
        let off = 1 + (rng.gen_range(0..spread) + rng.gen_range(0..spread)) / 2;
        if r + off >= n {
            continue;
        }
        let (a, b) = (r + off, r);
        if seen.insert((a, b)) {
            pairs.push((a, b));
        }
    }
    let mut t = Triplets::new(n, n);
    let mut degree = vec![0usize; n];
    for &(a, b) in &pairs {
        let v = rng.gen_range(-1.0..-0.05);
        t.push(a, b, v);
        t.push(b, a, v);
        degree[a] += 1;
        degree[b] += 1;
    }
    for (i, &d) in degree.iter().enumerate() {
        t.push(i, i, d as f64 + 1.0);
    }
    t.normalize();
    t
}

/// FEM-style blocked matrix of order `n`: dense `block x block` diagonal
/// blocks plus symmetric off-diagonal block coupling (each block row is
/// coupled to its `coupling` nearest block neighbors on each side), all
/// aligned to the `block` grid — the pattern a finite-element assembly
/// with `block` unknowns per node produces.
///
/// `fill` is the probability that an off-diagonal cell *within* a
/// touched block is stored (the scalar diagonal is always stored):
/// `fill = 1.0` gives perfectly dense blocks (a BSR fill ratio of 1.0),
/// lower values leave holes that blocked storage must pay for as
/// fill-in. Deterministic for a fixed seed; values diagonally dominant.
///
/// # Panics
/// Panics if `block` is zero or does not divide `n`, or `fill` is
/// outside `[0, 1]`.
pub fn fem_blocked(n: usize, block: usize, coupling: usize, fill: f64, seed: u64) -> Triplets<f64> {
    assert!(block > 0 && n.is_multiple_of(block), "block must divide n");
    assert!((0.0..=1.0).contains(&fill), "fill must be in [0, 1]");
    let nb = n / block;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Triplets::new(n, n);
    let push_block = |t: &mut Triplets<f64>, rng: &mut StdRng, bi: usize, bj: usize| {
        for rr in 0..block {
            for cc in 0..block {
                let (r, c) = (bi * block + rr, bj * block + cc);
                if r == c {
                    // Dominant diagonal: bounds the row sum of every
                    // coupled block.
                    t.push(r, c, 2.0 * (block * (2 * coupling + 1)) as f64);
                } else if rng.gen_range(0.0..1.0) < fill {
                    t.push(r, c, rng.gen_range(-1.0..1.0));
                }
            }
        }
    };
    for bi in 0..nb {
        push_block(&mut t, &mut rng, bi, bi);
        for d in 1..=coupling {
            if bi + d < nb {
                push_block(&mut t, &mut rng, bi, bi + d);
                push_block(&mut t, &mut rng, bi + d, bi);
            }
        }
    }
    t.normalize();
    t
}

/// Structure-preserving scaling (MatrixGen-style): grows a seed pattern
/// by `factor` in both dimensions while keeping the features that drive
/// format selection — bandwidth, structural symmetry, diagonal fill,
/// triangularity, and block profile.
///
/// The scaled matrix is the seed replicated `factor` times along the
/// diagonal (every structural feature of the seed carries over
/// exactly), plus a thin band of coupling entries across each tile
/// boundary so the result is one connected system rather than `factor`
/// independent ones. Coupling entries reuse the seed's own sub- and
/// super-diagonal offsets (one entry per distinct offset per boundary),
/// so they never widen the bandwidth, never break triangularity, and
/// mirror each other exactly where the seed's pattern is symmetric.
/// Rectangular seeds are replicated without coupling. Deterministic for
/// a fixed seed value.
pub fn scale(t: &Triplets<f64>, factor: usize, seed: u64) -> Triplets<f64> {
    assert!(factor >= 1, "scale factor must be at least 1");
    let (nr, nc) = (t.nrows(), t.ncols());
    let mut out = Triplets::new(nr * factor, nc * factor);
    for k in 0..factor {
        for &(r, c, v) in t.entries() {
            out.push(k * nr + r, k * nc + c, v);
        }
    }
    if factor > 1 && nr == nc && nr > 0 {
        let positions: std::collections::HashSet<(usize, usize)> =
            t.entries().iter().map(|&(r, c, _)| (r, c)).collect();
        // The seed's own strictly-lower / strictly-upper offsets: the
        // coupling band reuses exactly these, so `max |r - c|` of the
        // result equals the seed's bandwidth.
        let mut lower_offsets: Vec<usize> = Vec::new();
        let mut upper_offsets: Vec<usize> = Vec::new();
        {
            let mut lo = std::collections::HashSet::new();
            let mut up = std::collections::HashSet::new();
            for &(r, c, _) in t.entries() {
                if r > c {
                    lo.insert(r - c);
                } else if c > r {
                    up.insert(c - r);
                }
            }
            lower_offsets.extend(lo);
            upper_offsets.extend(up);
            lower_offsets.sort_unstable();
            upper_offsets.sort_unstable();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for k in 1..factor {
            let b = k * nr; // first row/col of tile k
            for &d in &lower_offsets {
                let (r, c) = (b, b - d);
                let v = rng.gen_range(-1.0..-0.05);
                out.push(r, c, v);
                // Keep diagonal dominance where the seed stores the
                // affected diagonal positions (duplicates sum away in
                // normalize, so structure is untouched).
                for p in [r, c] {
                    if positions.contains(&(p % nr, p % nr)) {
                        out.push(p, p, -v);
                    }
                }
                // Mirror exactly when the seed's pattern does.
                if upper_offsets.binary_search(&d).is_ok() {
                    out.push(c, r, v);
                }
            }
            for &d in &upper_offsets {
                if lower_offsets.binary_search(&d).is_ok() {
                    continue; // already added as the mirror above
                }
                let (r, c) = (b - d, b);
                let v = rng.gen_range(-1.0..-0.05);
                out.push(r, c, v);
                for p in [r, c] {
                    if positions.contains(&(p % nr, p % nr)) {
                        out.push(p, p, -v);
                    }
                }
            }
        }
    }
    out.normalize();
    out
}

/// A deterministic dense vector with entries in `[-1, 1)`.
pub fn dense_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// A deterministic sparse vector: `nnz` distinct (index, value) pairs.
pub fn sparse_vector(n: usize, nnz: usize, seed: u64) -> Vec<(usize, f64)> {
    assert!(nnz <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(nnz);
    while out.len() < nnz {
        let i = rng.gen_range(0..n);
        if seen.insert(i) {
            out.push((i, rng.gen_range(-1.0..1.0)));
        }
    }
    out
}

/// Summary statistics of a pattern, for EXPERIMENTS.md reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStats {
    pub nrows: usize,
    pub ncols: usize,
    pub nnz: usize,
    pub min_row: usize,
    pub max_row: usize,
    pub avg_row: f64,
    /// max |r - c| over stored entries.
    pub bandwidth: usize,
    pub structurally_symmetric: bool,
}

/// Computes [`PatternStats`] for a triplet matrix.
pub fn pattern_stats(t: &Triplets<f64>) -> PatternStats {
    let counts = t.row_counts();
    let positions: std::collections::HashSet<(usize, usize)> =
        t.entries().iter().map(|&(r, c, _)| (r, c)).collect();
    PatternStats {
        nrows: t.nrows(),
        ncols: t.ncols(),
        nnz: t.nnz(),
        min_row: counts.iter().copied().min().unwrap_or(0),
        max_row: counts.iter().copied().max().unwrap_or(0),
        avg_row: t.nnz() as f64 / t.nrows().max(1) as f64,
        bandwidth: t
            .entries()
            .iter()
            .map(|&(r, c, _)| r.abs_diff(c))
            .max()
            .unwrap_or(0),
        structurally_symmetric: t
            .entries()
            .iter()
            .all(|&(r, c, _)| positions.contains(&(c, r))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sparse_exact_nnz() {
        let t = random_sparse(50, 40, 200, 1);
        assert_eq!(t.nnz(), 200);
        assert_eq!(t.nrows(), 50);
        // Deterministic for a fixed seed.
        assert_eq!(t, random_sparse(50, 40, 200, 1));
        assert_ne!(t, random_sparse(50, 40, 200, 2));
    }

    #[test]
    fn banded_pattern() {
        let t = banded(10, 2, 3);
        let s = pattern_stats(&t);
        assert_eq!(s.bandwidth, 2);
        assert!(s.structurally_symmetric);
        for &(r, c, _) in t.entries() {
            assert!(r.abs_diff(c) <= 2);
        }
    }

    #[test]
    fn poisson_is_symmetric_with_4s() {
        let t = poisson2d(4);
        assert_eq!(t.nrows(), 16);
        let s = pattern_stats(&t);
        assert!(s.structurally_symmetric);
        assert_eq!(t.get(5, 5), 4.0);
        assert_eq!(t.get(5, 4), -1.0);
        assert_eq!(t.get(0, 3), 0.0);
    }

    #[test]
    fn can_1072_like_matches_target_shape() {
        let t = can_1072_like();
        let s = pattern_stats(&t);
        assert_eq!(s.nrows, 1072);
        assert_eq!(s.ncols, 1072);
        // Within a pair of the Harwell–Boeing count (12444).
        assert!((s.nnz as i64 - 12444).abs() <= 2, "nnz = {}", s.nnz);
        assert!(s.structurally_symmetric);
        // Full diagonal present.
        for i in 0..1072 {
            assert!(t.get(i, i) != 0.0, "diagonal hole at {i}");
        }
        // Deterministic.
        assert_eq!(t.nnz(), can_1072_like().nnz());
    }

    #[test]
    fn lower_triangle_is_solvable() {
        let t = can_1072_like();
        let l = t.lower_triangle_full_diag(1.0);
        for i in 0..1072 {
            assert!(l.get(i, i) != 0.0);
        }
        for &(r, c, _) in l.entries() {
            assert!(r >= c);
        }
    }

    #[test]
    fn sparse_vector_distinct() {
        let v = sparse_vector(100, 30, 9);
        assert_eq!(v.len(), 30);
        let mut idx: Vec<usize> = v.iter().map(|&(i, _)| i).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 30);
    }

    #[test]
    fn tridiagonal_stats() {
        let t = tridiagonal(5);
        assert_eq!(t.nnz(), 13);
        assert_eq!(pattern_stats(&t).bandwidth, 1);
    }
}
