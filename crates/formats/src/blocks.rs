//! Block-structure discovery: find the dominant block size (for BSR) or
//! the natural block strips (for VBR) of a [`Triplets`] instance, with a
//! fill-in ratio report.
//!
//! Blocked storage trades index overhead for dense fill-in: an `r x c`
//! blocking stores `touched-blocks * r * c` cells to cover `nnz` actual
//! entries, so the useful figure of merit is the *fill* `nnz / cells`
//! (1.0 = every stored block fully dense). Discovery scores every
//! candidate block shape and keeps the largest one whose fill clears a
//! threshold — the shape a FEM assembly with that element size would
//! produce scores exactly 1.0.

use crate::scalar::Scalar;
use crate::Triplets;

/// Fill report for one candidate block shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockReport {
    /// Block height.
    pub r: usize,
    /// Block width.
    pub c: usize,
    /// Stored cells under this blocking (`touched blocks * r * c`).
    pub stored_cells: usize,
    /// Actual entry count of the source matrix.
    pub source_nnz: usize,
    /// `source_nnz / stored_cells` — 1.0 means perfectly blocked.
    pub fill: f64,
}

/// Computes the fill report for one block shape.
///
/// # Panics
/// Panics if `r`/`c` are zero or do not divide the matrix shape.
pub fn block_fill<T: Scalar>(t: &Triplets<T>, r: usize, c: usize) -> BlockReport {
    assert!(r > 0 && c > 0, "block shape must be nonzero");
    assert!(
        t.nrows().is_multiple_of(r) && t.ncols().is_multiple_of(c),
        "block shape {r}x{c} must divide the matrix shape {}x{}",
        t.nrows(),
        t.ncols()
    );
    let mut t = t.clone();
    t.normalize();
    let mut blocks: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for &(row, col, _) in t.entries() {
        blocks.insert((row / r, col / c));
    }
    let stored_cells = blocks.len() * r * c;
    let source_nnz = t.nnz();
    BlockReport {
        r,
        c,
        stored_cells,
        source_nnz,
        fill: if stored_cells == 0 {
            1.0
        } else {
            source_nnz as f64 / stored_cells as f64
        },
    }
}

/// Finds the dominant block size: the largest-area `r x c` (with
/// `r, c <= max`, both dividing the matrix shape) whose fill is at least
/// `min_fill`. Ties on area prefer the squarer (then taller) shape. The
/// `1 x 1` blocking has fill 1.0 by construction, so a result always
/// exists when `min_fill <= 1.0`.
pub fn discover_block_size<T: Scalar>(t: &Triplets<T>, max: usize, min_fill: f64) -> BlockReport {
    let mut best: Option<BlockReport> = None;
    for r in 1..=max.min(t.nrows().max(1)) {
        if !t.nrows().is_multiple_of(r) {
            continue;
        }
        for c in 1..=max.min(t.ncols().max(1)) {
            if !t.ncols().is_multiple_of(c) {
                continue;
            }
            let rep = block_fill(t, r, c);
            if rep.fill + 1e-12 < min_fill {
                continue;
            }
            let area = |b: &BlockReport| b.r * b.c;
            // Squarer shapes win area ties: minimize |r - c|.
            let tie = |b: &BlockReport| (usize::MAX - b.r.abs_diff(b.c), b.r);
            match &best {
                Some(b) if (area(b), tie(b)) >= (area(&rep), tie(&rep)) => {}
                _ => best = Some(rep),
            }
        }
    }
    best.unwrap_or(BlockReport {
        r: 1,
        c: 1,
        stored_cells: t.nnz(),
        source_nnz: t.nnz(),
        fill: 1.0,
    })
}

/// Finds the natural VBR strips of a matrix: maximal runs of consecutive
/// rows with identical column support form the row strips, and likewise
/// (on row support) for the column strips — the classic CSR→VBR
/// agglomeration. Returns `(rpntr, cpntr)` partitions; on a matrix
/// assembled from dense variable-size blocks this recovers the planted
/// strips exactly.
pub fn discover_strips<T: Scalar>(t: &Triplets<T>) -> (Vec<usize>, Vec<usize>) {
    let mut t = t.clone();
    t.normalize();
    let mut row_support: Vec<Vec<usize>> = vec![Vec::new(); t.nrows()];
    let mut col_support: Vec<Vec<usize>> = vec![Vec::new(); t.ncols()];
    for &(r, c, _) in t.entries() {
        row_support[r].push(c);
        col_support[c].push(r);
    }
    // Entries are row-major sorted, so row supports are sorted already;
    // column supports need a sort.
    for s in &mut col_support {
        s.sort_unstable();
    }
    let strips = |support: &[Vec<usize>]| {
        let n = support.len();
        let mut p = vec![0usize];
        for i in 1..n {
            if support[i] != support[i - 1] {
                p.push(i);
            }
        }
        if n > 0 {
            p.push(n);
        } else {
            p.push(0);
            // Degenerate empty dimension still needs a 2-entry partition
            // shape; callers with 0-sized matrices should not build VBR.
        }
        p
    };
    (strips(&row_support), strips(&col_support))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn fill_report_counts_cells() {
        let t = Triplets::from_entries(4, 4, &[(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0)]);
        let rep = block_fill(&t, 2, 2);
        // Entries touch blocks (0,0) and (1,1) → 8 stored cells.
        assert_eq!(rep.stored_cells, 8);
        assert_eq!(rep.source_nnz, 3);
        assert!((rep.fill - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_planted_block_size() {
        for &bs in &[2usize, 3, 4] {
            let t = gen::fem_blocked(8 * bs, bs, 2, 1.0, 7);
            let rep = discover_block_size(&t, 8, 0.9);
            assert_eq!((rep.r, rep.c), (bs, bs), "planted {bs}x{bs}");
            assert!((rep.fill - 1.0).abs() < 1e-12, "dense blocks fill 1.0");
        }
    }

    #[test]
    fn scattered_matrix_falls_back_to_1x1() {
        let t = gen::random_sparse(24, 24, 40, 3);
        let rep = discover_block_size(&t, 8, 0.9);
        assert_eq!((rep.r, rep.c), (1, 1));
        assert!((rep.fill - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_planted_strips() {
        // Two dense blocks: rows {0,1} x cols {0,1,2}, rows {2,3,4} x
        // cols {3,4}.
        let mut t = Triplets::new(5, 5);
        for r in 0..2 {
            for c in 0..3 {
                t.push(r, c, 1.0 + (r * 3 + c) as f64);
            }
        }
        for r in 2..5 {
            for c in 3..5 {
                t.push(r, c, 10.0 + (r * 2 + c) as f64);
            }
        }
        let (rp, cp) = discover_strips(&t);
        assert_eq!(rp, vec![0, 2, 5]);
        assert_eq!(cp, vec![0, 3, 5]);
    }

    #[test]
    fn strip_discovery_feeds_vbr() {
        let t = gen::fem_blocked(12, 3, 2, 1.0, 11);
        let (rp, cp) = discover_strips(&t);
        let v = crate::Vbr::from_triplets(&t, &rp, &cp);
        let r = v.validate();
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(v.to_triplets().entries(), {
            let mut s = t.clone();
            s.normalize();
            s.entries().to_vec()
        });
    }
}
