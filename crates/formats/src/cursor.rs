//! Runtime level cursors: the executable half of the low-level API.
//!
//! The paper implements enumeration through a C++ class hierarchy
//! (`term_nesting`, `increasing_iterator`, `interval_iterator`, …) whose
//! methods are resolved statically via the Barton–Nackman trick. The plan
//! *interpreter* in `bernoulli-synth` instead needs a dynamic interface,
//! provided here; the statically-dispatched equivalent is what the code
//! *emitter* produces (specialized Rust per format, like the paper's
//! Fig. 9).
//!
//! A format exposes one or more [`Chain`](crate::view::Chain)s (linearized
//! access paths). Within a chain, every nesting level supports:
//!
//! - `cursor`/`advance`: enumerate the keys stored at this level beneath a
//!   parent position, forward or (for interval levels) backward;
//! - `search`: find the child position for a given key, per the level's
//!   [`SearchKind`](crate::view::SearchKind);
//! - at the innermost level, `value_at`/`set_value_at` read and write the
//!   stored scalar.
//!
//! Positions are opaque `usize` tokens whose meaning is format-private
//! (e.g. for CSR, the level-0 position is a row number and the level-1
//! position is an index into `colind`/`values`).

use crate::view::FormatView;
use crate::SparseMatrix;

/// Opaque per-format position token.
pub type Position = usize;

/// Keys bound by one cursor step (one per attribute of the level).
pub type KeyTuple = Vec<i64>;

/// Enumeration state for one level of one chain.
///
/// The generic walk is: `let mut cur = view.cursor(chain, level, pos, rev);`
/// then `while view.advance(&mut cur) { use cur.keys / cur.pos }`.
#[derive(Clone, Debug)]
pub struct ChainCursor {
    /// Chain id (as assigned by [`FormatView::alternatives`]).
    pub chain: usize,
    /// Level within the chain.
    pub level: usize,
    /// Parent position this cursor enumerates under.
    pub parent: Position,
    /// Raw iteration index (format-private meaning).
    pub idx: i64,
    /// Exclusive end of the raw index range (for forward traversal).
    pub end: i64,
    /// Traverse in decreasing key order (supported on interval levels).
    pub reverse: bool,
    /// Keys of the current entry (valid after a successful `advance`).
    pub keys: KeyTuple,
    /// Child position of the current entry (valid after `advance`).
    pub pos: Position,
    /// Whether `advance` has been called at least once.
    pub started: bool,
}

impl ChainCursor {
    /// Creates a cursor over the raw index range `lo..hi`.
    pub fn over_range(
        chain: usize,
        level: usize,
        parent: Position,
        lo: i64,
        hi: i64,
        reverse: bool,
    ) -> ChainCursor {
        ChainCursor {
            chain,
            level,
            parent,
            idx: if reverse { hi } else { lo - 1 },
            end: if reverse { lo } else { hi },
            reverse,
            keys: Vec::new(),
            pos: 0,
            started: false,
        }
    }

    /// Steps the raw index; returns `false` when the range is exhausted.
    /// Format `advance` implementations call this and then fill
    /// `keys`/`pos` from `idx`.
    pub fn step(&mut self) -> bool {
        self.started = true;
        if self.reverse {
            self.idx -= 1;
            self.idx >= self.end
        } else {
            self.idx += 1;
            self.idx < self.end
        }
    }
}

/// The dynamic low-level API implemented by every format (at `f64`).
///
/// Chain and level numbering must agree with the format's
/// [`FormatView::alternatives`] output.
pub trait SparseView: SparseMatrix {
    /// The index-structure description of this format instance.
    fn format_view(&self) -> FormatView;

    /// Opens a cursor over `level` of `chain` beneath `parent`.
    ///
    /// # Panics
    /// Panics if `reverse` is requested on a level that does not support
    /// it (non-interval levels), or on invalid chain/level.
    fn cursor(&self, chain: usize, level: usize, parent: Position, reverse: bool) -> ChainCursor;

    /// Advances the cursor, filling `keys` and `pos`. Returns `false` at
    /// the end of the level.
    fn advance(&self, cur: &mut ChainCursor) -> bool;

    /// Searches `level` of `chain` beneath `parent` for `keys`; returns
    /// the child position if the keys are stored.
    ///
    /// Supported per the level's [`SearchKind`](crate::view::SearchKind);
    /// `SearchKind::None` levels panic.
    fn search(
        &self,
        chain: usize,
        level: usize,
        parent: Position,
        keys: &[i64],
    ) -> Option<Position>;

    /// Reads the stored value at a leaf position of `chain`.
    fn value_at(&self, chain: usize, pos: Position) -> f64;

    /// Writes the stored value at a leaf position of `chain`.
    fn set_value_at(&mut self, chain: usize, pos: Position, v: f64);

    /// Applies a named permutation table: `table[x]`.
    ///
    /// Only formats whose view contains a `perm` production implement
    /// this; others panic.
    fn perm_apply(&self, table: &str, x: i64) -> i64 {
        panic!("format has no permutation table named {table:?} (apply {x})");
    }

    /// Applies the inverse of a named permutation table.
    fn perm_unapply(&self, table: &str, x: i64) -> i64 {
        panic!("format has no permutation table named {table:?} (unapply {x})");
    }
}

/// Walks an entire chain recursively, invoking `f` with the stored
/// attribute keys (outermost-level first) and the value. Utility for
/// tests and for the view-conformance checker. A chain id the view
/// does not declare has no entries, so the walk visits nothing.
pub fn walk_chain(view: &dyn SparseView, chain: usize, f: &mut dyn FnMut(&[i64], f64)) {
    let fv = view.format_view();
    let Some(nlevels) = fv
        .alternatives()
        .into_iter()
        .flatten()
        .find(|c| c.id == chain)
        .map(|c| c.levels.len())
    else {
        return;
    };
    let mut keys: Vec<i64> = Vec::new();
    walk_rec(view, chain, 0, nlevels, 0, &mut keys, f);
}

fn walk_rec(
    view: &dyn SparseView,
    chain: usize,
    level: usize,
    nlevels: usize,
    parent: Position,
    keys: &mut Vec<i64>,
    f: &mut dyn FnMut(&[i64], f64),
) {
    if level == nlevels {
        f(keys, view.value_at(chain, parent));
        return;
    }
    let mut cur = view.cursor(chain, level, parent, false);
    while view.advance(&mut cur) {
        let depth = keys.len();
        keys.extend_from_slice(&cur.keys);
        walk_rec(view, chain, level + 1, nlevels, cur.pos, keys, f);
        keys.truncate(depth);
    }
}

/// Checks that a format's view description is *faithful*: enumerating
/// every chain of the given alternative visits exactly the stored entries
/// of the matrix, with coordinates that, after applying the chain's `fwd`
/// transforms, agree with random access. Returns an error description on
/// the first mismatch.
///
/// This is the executable contract between the format implementor and the
/// compiler (property P2 of DESIGN.md).
pub fn check_view_conformance(view: &dyn SparseView, alternative: usize) -> Result<(), String> {
    use std::collections::HashMap;
    let fv = view.format_view();
    let alts = fv.alternatives();
    let alt = alts
        .get(alternative)
        .ok_or_else(|| format!("alternative {alternative} out of range"))?;

    let mut seen: HashMap<(i64, i64), f64> = HashMap::new();
    for chain in alt {
        let stored: Vec<String> = chain.stored_attrs().iter().map(|s| s.to_string()).collect();
        let mut err: Option<String> = None;
        walk_chain(view, chain.id, &mut |keys, v| {
            if err.is_some() {
                return;
            }
            // Bind stored attrs, then run fwd transforms to dense coords.
            let mut env: HashMap<&str, i64> = HashMap::new();
            for (a, &k) in stored.iter().zip(keys) {
                env.insert(a.as_str(), k);
            }
            for t in &chain.fwd {
                let val = match t {
                    crate::view::Transform::Affine { terms, cst, .. } => {
                        let mut acc = *cst;
                        for (a, c) in terms {
                            let Some(&x) = env.get(a.as_str()) else {
                                err = Some(format!("transform input {a} unbound"));
                                return;
                            };
                            acc += c * x;
                        }
                        acc
                    }
                    crate::view::Transform::PermApply { table, input, .. } => {
                        let Some(&x) = env.get(input.as_str()) else {
                            err = Some(format!("perm input {input} unbound"));
                            return;
                        };
                        view.perm_apply(table, x)
                    }
                    crate::view::Transform::PermUnapply { table, input, .. } => {
                        let Some(&x) = env.get(input.as_str()) else {
                            err = Some(format!("perm input {input} unbound"));
                            return;
                        };
                        view.perm_unapply(table, x)
                    }
                };
                env.insert(
                    match t {
                        crate::view::Transform::Affine { out, .. }
                        | crate::view::Transform::PermApply { out, .. }
                        | crate::view::Transform::PermUnapply { out, .. } => out.as_str(),
                    },
                    val,
                );
            }
            let dense: Vec<i64> = fv
                .dense_attrs
                .iter()
                .map(|a| *env.get(a.as_str()).unwrap_or(&i64::MIN))
                .collect();
            if dense.contains(&i64::MIN) {
                err = Some(format!("dense attrs unbound after transforms: {env:?}"));
                return;
            }
            let (r, c) = (dense[0], *dense.get(1).unwrap_or(&0));
            if r < 0 || c < 0 || r as usize >= view.nrows() || c as usize >= view.ncols() {
                err = Some(format!("coordinates out of range: ({r}, {c})"));
                return;
            }
            let expect = view.get(r as usize, c as usize);
            if expect != v {
                err = Some(format!(
                    "value mismatch at ({r}, {c}): random access {expect}, enumeration {v}"
                ));
                return;
            }
            if seen.insert((r, c), v).is_some() {
                err = Some(format!("entry ({r}, {c}) enumerated twice"));
            }
        });
        if let Some(e) = err {
            return Err(format!("chain {}: {e}", chain.id));
        }
    }
    let nnz = view.nnz();
    if seen.len() != nnz {
        return Err(format!(
            "alternative {alternative} enumerated {} entries, nnz is {nnz}",
            seen.len()
        ));
    }
    Ok(())
}
