//! Contract tests for the runtime trace counters.
//!
//! With the `trace` feature on, the workload-shaped counters
//! (`par.<kernel>.{calls,nnz,flops,...}`) must be a pure function of
//! the inputs — identical between repeated runs at one granularity,
//! and identical across every partition granularity the equivalence
//! tests use (scheduling-dependent series like chunk steals and pool
//! timers are explicitly *not* covered by that contract). With the
//! feature off, running the same kernels must record nothing at all.
//!
//! Everything lives in a single `#[test]` per mode: the trace registry
//! is process-global, and this integration test owning its whole
//! process is what keeps concurrent tests from polluting the counts.

use bernoulli_blas::par;
use bernoulli_formats::{gen, Csr};

const GRANULARITIES: [usize; 5] = [1, 2, 3, 7, 16];

/// The series whose values must be deterministic, with their expected
/// sums for one run of [`run_workload`] (nnz/flops filled per input).
const DETERMINISTIC: [&str; 8] = [
    "par.mvm_csr.calls",
    "par.mvm_csr.nnz",
    "par.mvm_csr.flops",
    "par.ts.solves",
    "par.ts.nnz",
    "par.ts.solve_levels",
    "par.dot.calls",
    "par.dot.elems",
];

/// One fixed workload: a CSR MVM, a scheduled triangular solve, and a
/// dot product, all at partition granularity `g`.
fn run_workload(
    a: &Csr<f64>,
    l: &Csr<f64>,
    sched: &par::LevelSchedule,
    x: &[f64],
    b0: &[f64],
    g: usize,
) {
    let mut y = vec![0.0; a.nrows];
    par::par_mvm_csr(a, x, &mut y, g);
    std::hint::black_box(y);
    let mut b = b0.to_vec();
    par::par_ts_csr_scheduled(l, sched, &mut b, g);
    std::hint::black_box(b);
    std::hint::black_box(par::par_dot(x, x, g));
}

/// Snapshot restricted to the deterministic series, as
/// `(name, count, sum)` rows.
fn deterministic_snapshot() -> Vec<(&'static str, u64, f64)> {
    bernoulli_trace::snapshot()
        .into_iter()
        .filter(|(name, _)| DETERMINISTIC.contains(name))
        .map(|(name, s)| (name, s.count, s.sum))
        .collect()
}

#[cfg(feature = "trace")]
#[test]
fn counters_deterministic_across_granularities() {
    let t = gen::structurally_symmetric(500, 3000, 40, 3);
    let a = Csr::from_triplets(&t);
    let tl = t.lower_triangle_full_diag(3.0);
    let l = Csr::from_triplets(&tl);
    let sched = par::LevelSchedule::build(&l);
    let x = gen::dense_vector(500, 5);
    let b0 = gen::dense_vector(500, 7);

    let mut per_granularity = Vec::new();
    for g in GRANULARITIES {
        bernoulli_trace::reset();
        run_workload(&a, &l, &sched, &x, &b0, g);
        let first = deterministic_snapshot();
        assert_eq!(
            first.len(),
            DETERMINISTIC.len(),
            "granularity {g}: every deterministic series present"
        );

        // Run-to-run: same granularity, bitwise-identical counters.
        bernoulli_trace::reset();
        run_workload(&a, &l, &sched, &x, &b0, g);
        assert_eq!(first, deterministic_snapshot(), "granularity {g} reruns");
        per_granularity.push(first);
    }

    // Cross-granularity: the partition granularity must not leak into
    // workload-shaped counters.
    for (g, snap) in GRANULARITIES.iter().zip(&per_granularity) {
        assert_eq!(
            snap, &per_granularity[0],
            "granularity {g} vs {}",
            GRANULARITIES[0]
        );
    }

    // And the values are the workload's actual shape, not just
    // self-consistent noise.
    let get = |name: &str| {
        per_granularity[0]
            .iter()
            .find(|(n, _, _)| *n == name)
            .unwrap()
            .2
    };
    assert_eq!(get("par.mvm_csr.nnz"), a.values.len() as f64);
    assert_eq!(get("par.mvm_csr.flops"), 2.0 * a.values.len() as f64);
    assert_eq!(get("par.ts.nnz"), l.values.len() as f64);
    assert_eq!(get("par.ts.solve_levels"), sched.nlevels() as f64);
    assert_eq!(get("par.dot.elems"), 500.0);
}

#[cfg(not(feature = "trace"))]
#[test]
fn disabled_tracing_records_nothing() {
    let t = gen::structurally_symmetric(500, 3000, 40, 3);
    let a = Csr::from_triplets(&t);
    let tl = t.lower_triangle_full_diag(3.0);
    let l = Csr::from_triplets(&tl);
    let sched = par::LevelSchedule::build(&l);
    let x = gen::dense_vector(500, 5);
    let b0 = gen::dense_vector(500, 7);
    for g in GRANULARITIES {
        run_workload(&a, &l, &sched, &x, &b0, g);
    }
    bernoulli_trace::flush_local();
    assert!(bernoulli_trace::snapshot().is_empty());
    assert!(deterministic_snapshot().is_empty());
}
