//! Property tests for the parallel execution subsystem: every parallel
//! kernel against its sequential counterpart, across random matrices,
//! partition granularities (1, 2, 3, 7, 16) and degenerate shapes,
//! plus run-to-run determinism.
//!
//! Equality levels follow the taxonomy of `bernoulli_blas::par`:
//! gather-shaped kernels must match the sequential kernels **bitwise**
//! at every thread count; scatter-shaped kernels (fixed-order partial
//! reduction) must match up to floating-point reassociation and be
//! bitwise-reproducible between runs.

use bernoulli_blas::{handwritten as hw, par};
use bernoulli_formats::{gen, Csc, Csr, Dia, Ell, Jad, Triplets};
use proptest::prelude::*;

const THREADS: [usize; 5] = [1, 2, 3, 7, 16];

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-12 * (1.0 + x.abs().max(y.abs())),
            "{what}[{i}]: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mvm_matches_sequential(m in 0..40usize, n in 1..40usize,
                              fill in 0..160usize, seed in 0..10_000u64) {
        let nnz = fill.min(m * n);
        let t = gen::random_sparse(m, n, nnz, seed);
        let x = gen::dense_vector(n, seed ^ 0x5eed);
        let xt = gen::dense_vector(m, seed ^ 0xfeed);

        let csr = Csr::from_triplets(&t);
        let csc = Csc::from_triplets(&t);
        let ell = Ell::from_triplets(&t);
        let jad = Jad::from_triplets(&t);
        let dia = Dia::from_triplets(&t);

        let mut mvm_ref = vec![0.0; m];
        hw::mvm_csr(&csr, &x, &mut mvm_ref);
        let mut mvmt_ref = vec![0.0; n];
        hw::mvmt_csr(&csr, &xt, &mut mvmt_ref);
        let mut dia_mvm_ref = vec![0.0; m];
        hw::mvm_dia(&dia, &x, &mut dia_mvm_ref);
        let mut dia_mvmt_ref = vec![0.0; n];
        hw::mvmt_dia(&dia, &xt, &mut dia_mvmt_ref);
        let mut jad_mvm_ref = vec![0.0; m];
        hw::mvm_jad(&jad, &x, &mut jad_mvm_ref);
        let mut csc_mvmt_ref = vec![0.0; n];
        hw::mvmt_csc(&csc, &xt, &mut csc_mvmt_ref);

        for &th in &THREADS {
            // Gather kernels: bitwise.
            let mut y = vec![0.0; m];
            par::par_mvm_csr(&csr, &x, &mut y, th);
            prop_assert_eq!(&y, &mvm_ref);

            let mut y = vec![0.0; m];
            par::par_mvm_ell(&ell, &x, &mut y, th);
            prop_assert_eq!(&y, &mvm_ref);

            let mut y = vec![0.0; m];
            par::par_mvm_jad(&jad, &x, &mut y, th);
            prop_assert_eq!(&y, &jad_mvm_ref);

            let mut y = vec![0.0; m];
            par::par_mvm_dia(&dia, &x, &mut y, th);
            prop_assert_eq!(&y, &dia_mvm_ref);

            let mut y = vec![0.0; n];
            par::par_mvmt_csc(&csc, &xt, &mut y, th);
            prop_assert_eq!(&y, &csc_mvmt_ref);

            let mut y = vec![0.0; n];
            par::par_mvmt_dia(&dia, &xt, &mut y, th);
            prop_assert_eq!(&y, &dia_mvmt_ref);

            // Scatter kernels: equal up to reassociation.
            let mut y = vec![0.0; m];
            par::par_mvm_csc(&csc, &x, &mut y, th);
            assert_close(&y, &mvm_ref, "par_mvm_csc");

            let mut y = vec![0.0; n];
            par::par_mvmt_csr(&csr, &xt, &mut y, th);
            assert_close(&y, &mvmt_ref, "par_mvmt_csr");

            let mut y = vec![0.0; n];
            par::par_mvmt_ell(&ell, &xt, &mut y, th);
            assert_close(&y, &mvmt_ref, "par_mvmt_ell");

            let mut y = vec![0.0; n];
            par::par_mvmt_jad(&jad, &xt, &mut y, th);
            assert_close(&y, &mvmt_ref, "par_mvmt_jad");
        }
    }

    #[test]
    fn trisolve_matches_sequential_bitwise(n in 1..80usize, bw in 0..5usize,
                                           seed in 0..10_000u64) {
        let t = gen::banded(n, bw, seed).lower_triangle_full_diag(3.0);
        let l = Csr::from_triplets(&t);
        let b0 = gen::dense_vector(n, seed ^ 0xb0);
        let mut b_ref = b0.clone();
        hw::ts_csr(&l, &mut b_ref);
        for &th in &THREADS {
            let mut b = b0.clone();
            par::par_ts_csr(&l, &mut b, th);
            prop_assert_eq!(&b, &b_ref, "threads = {}", th);
        }
    }

    #[test]
    fn vecops_match_sequential(n in 0..700usize, seed in 0..10_000u64) {
        let x = gen::dense_vector(n, seed);
        let y0 = gen::dense_vector(n, seed ^ 1);
        let mut y_ref = y0.clone();
        hw::axpy(-0.75, &x, &mut y_ref);
        let dot_ref = hw::dot(&x, &y0);
        for &th in &THREADS {
            let mut y = y0.clone();
            par::par_axpy(-0.75, &x, &mut y, th);
            prop_assert_eq!(&y, &y_ref);
            let d = par::par_dot(&x, &y0, th);
            prop_assert!((d - dot_ref).abs() <= 1e-12 * (1.0 + dot_ref.abs()));
        }
        prop_assert_eq!(par::par_dot(&x, &y0, 1), dot_ref);
    }
}

/// Two runs with identical inputs and thread counts must agree bitwise
/// — including the scatter kernels, whose partial-buffer reduction
/// order is fixed.
#[test]
fn two_runs_are_bitwise_identical() {
    let t = gen::structurally_symmetric(300, 2400, 31, 42);
    let x = gen::dense_vector(300, 7);
    let csr = Csr::from_triplets(&t);
    let csc = Csc::from_triplets(&t);
    let ell = Ell::from_triplets(&t);
    let jad = Jad::from_triplets(&t);
    let run = |th: usize| {
        let mut outs = Vec::new();
        let mut y = vec![0.0; 300];
        par::par_mvm_csc(&csc, &x, &mut y, th);
        outs.push(y);
        let mut y = vec![0.0; 300];
        par::par_mvmt_csr(&csr, &x, &mut y, th);
        outs.push(y);
        let mut y = vec![0.0; 300];
        par::par_mvmt_ell(&ell, &x, &mut y, th);
        outs.push(y);
        let mut y = vec![0.0; 300];
        par::par_mvmt_jad(&jad, &x, &mut y, th);
        outs.push(y);
        outs.push(vec![par::par_dot(&x, &x, th)]);
        outs
    };
    for th in THREADS {
        assert_eq!(run(th), run(th), "threads = {th}");
    }
}

#[test]
fn degenerate_shapes() {
    // 0×0, 1×1, a single dense row, a single dense column, all-empty
    // rows — every kernel must handle them at every thread count.
    let cases: Vec<Triplets<f64>> = vec![
        Triplets::new(0, 0),
        Triplets::from_entries(1, 1, &[(0, 0, 2.0)]),
        Triplets::from_entries(
            1,
            30,
            &(0..30).map(|c| (0, c, c as f64 + 1.0)).collect::<Vec<_>>(),
        ),
        Triplets::from_entries(
            30,
            1,
            &(0..30).map(|r| (r, 0, r as f64 + 1.0)).collect::<Vec<_>>(),
        ),
        Triplets::new(5, 7),
    ];
    for t in &cases {
        let (m, n) = (t.nrows(), t.ncols());
        let x = gen::dense_vector(n, 3);
        let xt = gen::dense_vector(m, 4);
        let csr = Csr::from_triplets(t);
        let csc = Csc::from_triplets(t);
        let ell = Ell::from_triplets(t);
        let jad = Jad::from_triplets(t);
        let dia = Dia::from_triplets(t);
        let mut mvm_ref = vec![0.0; m];
        hw::mvm_csr(&csr, &x, &mut mvm_ref);
        let mut mvmt_ref = vec![0.0; n];
        hw::mvmt_csr(&csr, &xt, &mut mvmt_ref);
        for th in THREADS {
            let mut y = vec![0.0; m];
            par::par_mvm_csr(&csr, &x, &mut y, th);
            assert_eq!(y, mvm_ref);
            let mut y = vec![0.0; m];
            par::par_mvm_ell(&ell, &x, &mut y, th);
            assert_eq!(y, mvm_ref);
            let mut y = vec![0.0; m];
            par::par_mvm_jad(&jad, &x, &mut y, th);
            assert_eq!(y, mvm_ref);
            let mut y = vec![0.0; m];
            par::par_mvm_dia(&dia, &x, &mut y, th);
            assert_close(&y, &mvm_ref, "dia mvm degenerate");
            let mut y = vec![0.0; m];
            par::par_mvm_csc(&csc, &x, &mut y, th);
            assert_close(&y, &mvm_ref, "csc mvm degenerate");
            let mut y = vec![0.0; n];
            par::par_mvmt_csr(&csr, &xt, &mut y, th);
            assert_close(&y, &mvmt_ref, "csr mvmt degenerate");
            let mut y = vec![0.0; n];
            par::par_mvmt_csc(&csc, &xt, &mut y, th);
            assert_close(&y, &mvmt_ref, "csc mvmt degenerate");
            let mut y = vec![0.0; n];
            par::par_mvmt_ell(&ell, &xt, &mut y, th);
            assert_close(&y, &mvmt_ref, "ell mvmt degenerate");
            let mut y = vec![0.0; n];
            par::par_mvmt_jad(&jad, &xt, &mut y, th);
            assert_close(&y, &mvmt_ref, "jad mvmt degenerate");
            let mut y = vec![0.0; n];
            par::par_mvmt_dia(&dia, &xt, &mut y, th);
            assert_close(&y, &mvmt_ref, "dia mvmt degenerate");
        }
    }
}

/// The solvers built on the subsystem converge and are deterministic
/// end-to-end.
#[test]
fn parallel_solver_end_to_end() {
    let t = gen::poisson2d(14);
    let n = t.nrows();
    let a = Csr::from_triplets(&t);
    let b = gen::dense_vector(n, 17);
    let mut x1 = vec![0.0; n];
    let mut x2 = vec![0.0; n];
    let s1 = par::cg_csr(&a, &b, &mut x1, 1e-10, 3000, 4);
    let s2 = par::cg_csr(&a, &b, &mut x2, 1e-10, 3000, 4);
    assert!(s1.converged, "residual {}", s1.residual);
    assert_eq!(x1, x2);
    assert_eq!(s1, s2);
}
