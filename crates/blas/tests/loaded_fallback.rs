//! Interpreter fallback when the host has **no usable `rustc`**: the
//! compiled-kernel path must degrade with a typed reason and the
//! unified runner must still produce the hand-written results.
//!
//! This lives in its own integration-test binary (= its own process):
//! the kernel cache memoizes its compiler probe per process, so the
//! `BERNOULLI_RUSTC` override must be set before anything else touches
//! it — which only a dedicated process guarantees.

use bernoulli_blas::handwritten as hw;
use bernoulli_blas::synth;
use bernoulli_formats::{gen, Csr};
use bernoulli_synth::{
    KernelArg, KernelBackend, KernelCacheError, KernelStore, LoadError, Session,
};

#[test]
fn no_rustc_degrades_to_interpreter_with_typed_reason() {
    // Point the kernel cache at a compiler that cannot exist. First
    // probe in this process, so the memoized result is the failure.
    std::env::set_var("BERNOULLI_RUSTC", "/nonexistent/bernoulli-no-rustc");
    assert!(
        bernoulli_synth::rustc_info().is_err(),
        "the override must make the compiler probe fail"
    );

    let t = gen::structurally_symmetric(30, 150, 8, 3);
    let a = Csr::from_triplets(&t);
    let session = Session::new();
    let (p, mat) = synth::spec_for("mvm");
    let bound = session
        .bind(&p, &[(mat, synth::view_for("mvm", "csr"))])
        .expect("binds");
    let k = session.compile(&bound).expect("compiles");

    // Loading must fail with the typed CompilerUnavailable reason…
    let store = KernelStore::at(
        std::env::temp_dir().join(format!("bernoulli-kc-fallback-{}", std::process::id())),
    );
    match k.load_in(&store) {
        Err(LoadError::Cache(KernelCacheError::CompilerUnavailable { detail })) => {
            assert!(
                detail.contains("bernoulli-no-rustc"),
                "detail should name the probed binary: {detail}"
            );
        }
        other => panic!("expected CompilerUnavailable, got {other:?}"),
    }

    // …the backend must degrade rather than error…
    let backend = k.backend_in(&store);
    assert!(
        matches!(
            backend,
            KernelBackend::Interpreted {
                reason: LoadError::Cache(KernelCacheError::CompilerUnavailable { .. })
            }
        ),
        "backend must carry the typed fallback reason"
    );

    // …and the unified runner must still match the hand-written kernel
    // bitwise through the interpreter.
    let x = gen::dense_vector(30, 4);
    let mut y_fallback = vec![0.0; 30];
    let mut args = [
        KernelArg::Csr(&a),
        KernelArg::In(&x),
        KernelArg::Out(&mut y_fallback),
    ];
    k.run_with(&backend, &[30, 30], &mut args)
        .expect("fallback run");

    let mut y_hand = vec![0.0; 30];
    hw::mvm_csr(&a, &x, &mut y_hand);
    assert_eq!(y_fallback, y_hand, "fallback must match hand-written");
}
