//! Equivalence of the three execution paths for every synthesized
//! (kernel, format) pair in [`bernoulli_blas::synth::GENERATED_KERNELS`]:
//!
//!   runtime-loaded native kernel ≡ interpreter ≡ committed synthesized
//!   kernel — **bitwise**, and ≡ the hand-written baseline (bitwise
//!   where the accumulation order agrees, which is every pair here).
//!
//! When the host has no `rustc`, the loaded path degrades to the
//! interpreter with a typed reason; this test then checks the unified
//! `run_with` still matches the hand-written kernel and skips the
//! native comparisons with a notice (not a failure).

use bernoulli_blas::handwritten as hw;
use bernoulli_blas::synth;
use bernoulli_formats::{
    discover_strips, gen, Bsr, Coo, Csc, Csr, Dia, Ell, Jad, Sky, Triplets, Vbr,
};
use bernoulli_synth::{KernelArg, KernelBackend, KernelStore, LoadError, Session};

enum Mat {
    Csr(Csr<f64>),
    Csc(Csc<f64>),
    Coo(Coo<f64>),
    Dia(Dia<f64>),
    Ell(Ell<f64>),
    Jad(Jad<f64>),
    Sky(Sky<f64>),
    Bsr(Bsr<f64>),
    Vbr(Vbr<f64>),
}

impl Mat {
    fn build(format: &str, t: &Triplets<f64>) -> Mat {
        match format {
            "csr" => Mat::Csr(Csr::from_triplets(t)),
            "csc" => Mat::Csc(Csc::from_triplets(t)),
            "coo" => Mat::Coo(Coo::from_triplets(t)),
            "dia" => Mat::Dia(Dia::from_triplets(t)),
            "ell" => Mat::Ell(Ell::from_triplets(t)),
            "jad" => Mat::Jad(Jad::from_triplets(t)),
            "sky" => Mat::Sky(Sky::from_triplets(t)),
            "bsr2x2" => Mat::Bsr(Bsr::from_triplets(t, 2, 2)),
            "vbr" => {
                let (rp, cp) = discover_strips(t);
                Mat::Vbr(Vbr::from_triplets(t, &rp, &cp))
            }
            other => panic!("unknown format {other}"),
        }
    }

    fn arg(&self) -> KernelArg<'_> {
        match self {
            Mat::Csr(m) => KernelArg::Csr(m),
            Mat::Csc(m) => KernelArg::Csc(m),
            Mat::Coo(m) => KernelArg::Coo(m),
            Mat::Dia(m) => KernelArg::Dia(m),
            Mat::Ell(m) => KernelArg::Ell(m),
            Mat::Jad(m) => KernelArg::Jad(m),
            Mat::Sky(m) => KernelArg::Sky(m),
            Mat::Bsr(m) => KernelArg::Bsr(m),
            Mat::Vbr(m) => KernelArg::Vbr(m),
        }
    }
}

fn workload(kernel: &str, format: &str) -> (Triplets<f64>, Vec<f64>) {
    // Skyline can only store a lower profile, so its MVM runs on the
    // triangular operand too.
    let t = gen::structurally_symmetric(40, 240, 10, 3);
    if kernel == "ts" || format == "sky" {
        (t.lower_triangle_full_diag(2.5), gen::dense_vector(40, 9))
    } else {
        (t, gen::dense_vector(40, 8))
    }
}

/// Runs the committed synthesized kernel for a pair.
fn run_committed(kernel: &str, m: &Mat, mm: i64, nn: i64, x: &[f64], out: &mut [f64]) {
    match (kernel, m) {
        ("mvm", Mat::Csr(a)) => synth::mvm_csr(mm, nn, a, x, out),
        ("mvm", Mat::Csc(a)) => synth::mvm_csc(mm, nn, a, x, out),
        ("mvm", Mat::Coo(a)) => synth::mvm_coo(mm, nn, a, x, out),
        ("mvm", Mat::Dia(a)) => synth::mvm_dia(mm, nn, a, x, out),
        ("mvm", Mat::Ell(a)) => synth::mvm_ell(mm, nn, a, x, out),
        ("mvm", Mat::Jad(a)) => synth::mvm_jad(mm, nn, a, x, out),
        ("mvm", Mat::Sky(a)) => synth::mvm_sky(mm, nn, a, x, out),
        ("mvm", Mat::Bsr(a)) => synth::mvm_bsr2x2(mm, nn, a, x, out),
        ("mvm", Mat::Vbr(a)) => synth::mvm_vbr(mm, nn, a, x, out),
        ("mvmt", Mat::Csr(a)) => synth::mvmt_csr(mm, nn, a, x, out),
        ("mvmt", Mat::Csc(a)) => synth::mvmt_csc(mm, nn, a, x, out),
        ("mvmt", Mat::Coo(a)) => synth::mvmt_coo(mm, nn, a, x, out),
        ("mvmt", Mat::Bsr(a)) => synth::mvmt_bsr2x2(mm, nn, a, x, out),
        ("mvmt", Mat::Vbr(a)) => synth::mvmt_vbr(mm, nn, a, x, out),
        ("ts", Mat::Csr(l)) => synth::ts_csr(nn, l, out),
        ("ts", Mat::Csc(l)) => synth::ts_csc(nn, l, out),
        ("ts", Mat::Jad(l)) => synth::ts_jad(nn, l, out),
        ("ts", Mat::Dia(l)) => synth::ts_dia(nn, l, out),
        ("ts", Mat::Sky(l)) => synth::ts_sky(nn, l, out),
        _ => panic!("no committed kernel for this pair"),
    }
}

/// Runs the hand-written baseline for a pair.
fn run_handwritten(kernel: &str, m: &Mat, x: &[f64], out: &mut [f64]) {
    match (kernel, m) {
        ("mvm", Mat::Csr(a)) => hw::mvm_csr(a, x, out),
        ("mvm", Mat::Csc(a)) => hw::mvm_csc(a, x, out),
        ("mvm", Mat::Coo(a)) => hw::mvm_coo(a, x, out),
        ("mvm", Mat::Dia(a)) => hw::mvm_dia(a, x, out),
        ("mvm", Mat::Ell(a)) => hw::mvm_ell(a, x, out),
        ("mvm", Mat::Jad(a)) => hw::mvm_jad(a, x, out),
        ("mvm", Mat::Sky(a)) => hw::mvm_sky(a, x, out),
        ("mvm", Mat::Bsr(a)) => hw::mvm_bsr(a, x, out),
        ("mvm", Mat::Vbr(a)) => hw::mvm_vbr(a, x, out),
        ("mvmt", Mat::Csr(a)) => hw::mvmt_csr(a, x, out),
        ("mvmt", Mat::Csc(a)) => hw::mvmt_csc(a, x, out),
        ("mvmt", Mat::Coo(a)) => hw::mvmt_coo(a, x, out),
        ("mvmt", Mat::Bsr(a)) => hw::mvmt_bsr(a, x, out),
        ("mvmt", Mat::Vbr(a)) => hw::mvmt_vbr(a, x, out),
        ("ts", Mat::Csr(l)) => hw::ts_csr(l, out),
        ("ts", Mat::Csc(l)) => hw::ts_csc(l, out),
        ("ts", Mat::Jad(l)) => hw::ts_jad(l, out),
        ("ts", Mat::Dia(l)) => hw::ts_dia(l, out),
        ("ts", Mat::Sky(l)) => hw::ts_sky(l, out),
        _ => panic!("no handwritten kernel for this pair"),
    }
}

#[test]
fn loaded_interpreter_and_committed_agree_bitwise_on_every_pair() {
    let session = Session::new();
    let store = KernelStore::at(
        std::env::temp_dir().join(format!("bernoulli-kc-equiv-{}", std::process::id())),
    );
    let mut native_runs = 0usize;

    for &(kernel, format) in synth::GENERATED_KERNELS {
        let (t, vecdata) = workload(kernel, format);
        let m = Mat::build(format, &t);
        let (p, mat_name) = synth::spec_for(kernel);
        let view = synth::view_for(kernel, format);
        let bound = session.bind(&p, &[(mat_name, view)]).expect("binds");
        let k = session
            .compile(&bound)
            .unwrap_or_else(|e| panic!("{kernel}/{format}: {e}"));

        let (mm, nn) = (t.nrows() as i64, t.ncols() as i64);
        let params: Vec<i64> = if kernel == "ts" {
            vec![nn]
        } else {
            vec![mm, nn]
        };
        let out_len = if kernel == "mvmt" {
            t.ncols()
        } else {
            t.nrows()
        };
        let init: Vec<f64> = if kernel == "ts" {
            vecdata.clone()
        } else {
            vec![0.0; out_len]
        };

        // Path 1: interpreter through the unified positional runner.
        let interp_backend = KernelBackend::Interpreted {
            reason: LoadError::Emit(bernoulli_synth::EmitError("forced for test".into())),
        };
        let mut y_interp = init.clone();
        {
            let mut args = build_args(kernel, &m, &vecdata, &mut y_interp);
            k.run_with(&interp_backend, &params, &mut args)
                .unwrap_or_else(|e| panic!("{kernel}/{format} interp: {e}"));
        }

        // Path 2: committed synthesized kernel (the emitter's static
        // output — same algorithm the loaded cdylib embeds).
        let mut y_committed = init.clone();
        run_committed(kernel, &m, mm, nn, &vecdata, &mut y_committed);
        assert_eq!(
            y_interp, y_committed,
            "{kernel}/{format}: interpreter vs committed synthesized kernel"
        );

        // Path 3: hand-written baseline.
        let mut y_hand = init.clone();
        run_handwritten(kernel, &m, &vecdata, &mut y_hand);
        assert_eq!(
            y_interp, y_hand,
            "{kernel}/{format}: interpreter vs hand-written kernel"
        );

        // Path 4: runtime-compiled native kernel, when the host can
        // build one; otherwise the typed fallback must say why. With
        // rustc available the kernel must also pass differential
        // validation (these probe-friendly signatures all have one).
        match k.backend_in(&store) {
            KernelBackend::Validated(_) | KernelBackend::Compiled(_) => {
                let backend = k.backend_in(&store);
                let mut y_native = init.clone();
                let mut args = build_args(kernel, &m, &vecdata, &mut y_native);
                k.run_with(&backend, &params, &mut args)
                    .unwrap_or_else(|e| panic!("{kernel}/{format} native: {e}"));
                assert_eq!(
                    y_interp, y_native,
                    "{kernel}/{format}: interpreter vs loaded native kernel"
                );
                native_runs += 1;
            }
            KernelBackend::Interpreted { reason } => {
                eprintln!("SKIP native path for {kernel}/{format}: {reason}");
                assert!(
                    matches!(
                        reason,
                        LoadError::Cache(
                            bernoulli_synth::KernelCacheError::CompilerUnavailable { .. }
                        ) | LoadError::Emit(_)
                    ),
                    "{kernel}/{format}: unexpected fallback reason {reason:?}"
                );
            }
        }
    }

    if bernoulli_synth::rustc_info().is_ok() {
        assert_eq!(
            native_runs,
            synth::GENERATED_KERNELS.len(),
            "rustc is available: every pair must run natively"
        );
    }
}

fn build_args<'a>(
    kernel: &str,
    m: &'a Mat,
    x: &'a [f64],
    out: &'a mut [f64],
) -> Vec<KernelArg<'a>> {
    if kernel == "ts" {
        vec![m.arg(), KernelArg::Out(out)]
    } else {
        vec![m.arg(), KernelArg::In(x), KernelArg::Out(out)]
    }
}
