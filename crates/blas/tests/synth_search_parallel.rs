//! The S34 determinism contract: the synthesis search returns
//! byte-identical ranked candidates, `examined` and `pruned` counts
//! whether it runs sequentially or fanned out over a worker pool of any
//! size — and branch-and-bound pruning never changes the kept
//! candidates, only how much lowering work it took to find them.

use bernoulli_blas::{kernels, synth};
use bernoulli_formats::formats::sparsevec::{hashvec_format_view, sparsevec_format_view};
use bernoulli_formats::view::FormatView;
use bernoulli_ir::Program;
use bernoulli_synth::{SearchReport, Session, SynthOptions, WorkloadStats};

/// One full search on a dedicated session: `threads = None` runs
/// sequentially, `Some(n)` on a session-owned pool of `n` lanes. A
/// fresh session per call keeps every search genuinely cold.
fn search(
    p: &Program,
    views: &[(&str, FormatView)],
    opts: &SynthOptions,
    threads: Option<usize>,
) -> SearchReport {
    let session = match threads {
        Some(n) => Session::new().with_threads(n),
        None => Session::new(),
    };
    let opts = SynthOptions {
        parallel: threads.is_some(),
        ..opts.clone()
    };
    let bound = session.bind(p, views).unwrap();
    session
        .compile_with(&bound, &opts)
        .unwrap()
        .report()
        .clone()
}

type Workload = (
    &'static str,
    Program,
    Vec<(&'static str, FormatView)>,
    SynthOptions,
);

/// The five trace workloads, mirroring `experiments -- synth`: the
/// statistics are derived from the same instances the experiment
/// driver generates, not hand-written.
fn workloads() -> Vec<Workload> {
    use bernoulli_formats::{gen, vector_features, StructureFeatures};
    let can = gen::can_1072_like();
    let spdot_stats = WorkloadStats::from_features(&[
        (
            "x",
            &vector_features(10_000, &gen::sparse_vector(10_000, 300, 1)),
        ),
        (
            "y",
            &vector_features(10_000, &gen::sparse_vector(10_000, 500, 2)),
        ),
    ]);
    let matrix_stats = WorkloadStats::from_features(&[
        ("A", &StructureFeatures::of_triplets(&can)),
        (
            "L",
            &StructureFeatures::of_triplets(&can.lower_triangle_full_diag(1.0)),
        ),
    ]);
    let with_stats = |stats: &WorkloadStats| SynthOptions {
        stats: stats.clone(),
        // The plan cache would make every call after the first a lookup;
        // these tests compare genuine searches.
        cache_plans: false,
        ..SynthOptions::default()
    };
    vec![
        (
            "mvm/csr",
            kernels::mvm(),
            vec![("A", synth::view_for("mvm", "csr"))],
            with_stats(&matrix_stats),
        ),
        (
            "ts/csr",
            kernels::ts(),
            vec![("L", synth::view_for("ts", "csr"))],
            with_stats(&matrix_stats),
        ),
        (
            "ts/jad",
            kernels::ts(),
            vec![("L", synth::view_for("ts", "jad"))],
            with_stats(&matrix_stats),
        ),
        (
            "spdot/merge",
            kernels::spdot(),
            vec![
                ("x", sparsevec_format_view()),
                ("y", sparsevec_format_view()),
            ],
            with_stats(&spdot_stats),
        ),
        (
            "spdot/hash",
            kernels::spdot(),
            vec![("x", sparsevec_format_view()), ("y", hashvec_format_view())],
            with_stats(&spdot_stats),
        ),
    ]
}

fn assert_identical(label: &str, a: &SearchReport, b: &SearchReport) {
    assert_eq!(a.examined, b.examined, "{label}: examined diverged");
    assert_eq!(a.pruned, b.pruned, "{label}: pruned diverged");
    assert_eq!(a.reasons, b.reasons, "{label}: reasons diverged");
    assert_eq!(
        a.candidates.len(),
        b.candidates.len(),
        "{label}: candidate count diverged"
    );
    for (i, (x, y)) in a.candidates.iter().zip(&b.candidates).enumerate() {
        assert_eq!(
            x.cost.to_bits(),
            y.cost.to_bits(),
            "{label}: candidate {i} cost diverged"
        );
        assert_eq!(x.choices, y.choices, "{label}: candidate {i} choices");
        assert_eq!(
            x.safety_notes, y.safety_notes,
            "{label}: candidate {i} safety notes"
        );
        assert_eq!(
            x.plan.to_string(),
            y.plan.to_string(),
            "{label}: candidate {i} plan"
        );
    }
}

/// Property (satellite c): for every workload and pool size in
/// {1, 2, 8}, the pooled search is byte-identical to the sequential
/// one — same ranked candidates, costs, plans, `examined`, `pruned`.
#[test]
fn parallel_matches_sequential_for_all_pool_sizes() {
    for (label, p, views, base) in workloads() {
        let seq = search(&p, &views, &base, None);
        assert!(
            !seq.candidates.is_empty(),
            "{label}: workload must synthesize"
        );
        for threads in [1usize, 2, 8] {
            let par = search(&p, &views, &base, Some(threads));
            assert_identical(&format!("{label}/threads={threads}"), &seq, &par);
        }
    }
}

/// Branch-and-bound in best-plan mode (keep=1) skips lowering work but
/// must not change the result: prune on/off agree on the kept
/// candidate bit-for-bit (the floor is admissible), and the pruned
/// search stays deterministic across pool sizes.
#[test]
fn pruning_is_admissible_and_deterministic() {
    let mut total_pruned = 0usize;
    for (label, p, views, base) in workloads() {
        let pruned_opts = SynthOptions { keep: 1, ..base };
        let unpruned_opts = SynthOptions {
            prune: false,
            ..pruned_opts.clone()
        };
        let with = search(&p, &views, &pruned_opts, None);
        let without = search(&p, &views, &unpruned_opts, None);
        assert_eq!(
            with.examined, without.examined,
            "{label}: pruning must not change how many embeddings are considered"
        );
        assert_eq!(without.pruned, 0, "{label}: prune=false never prunes");
        assert_eq!(
            with.candidates.len(),
            without.candidates.len(),
            "{label}: pruning changed the number of kept candidates"
        );
        for (x, y) in with.candidates.iter().zip(&without.candidates) {
            assert_eq!(
                x.cost.to_bits(),
                y.cost.to_bits(),
                "{label}: pruning changed the best cost — floor is not admissible"
            );
            assert_eq!(
                x.plan.to_string(),
                y.plan.to_string(),
                "{label}: pruning changed the best plan"
            );
        }
        for threads in [1usize, 2, 8] {
            let par = search(&p, &views, &pruned_opts, Some(threads));
            assert_identical(&format!("{label}/pruned/threads={threads}"), &with, &par);
        }
        total_pruned += with.pruned;
    }
    // The bound must actually engage somewhere (ts/jad prunes the
    // cross-product-shaped embeddings of its fruitless configurations).
    assert!(
        total_pruned > 0,
        "branch-and-bound never engaged on any workload"
    );
}
