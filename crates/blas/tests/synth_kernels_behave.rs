//! The committed synthesized kernels must agree with the dense reference
//! executor and with the handwritten baselines (DESIGN.md property P5).

use bernoulli_blas::handwritten as hw;
use bernoulli_blas::synth;
use bernoulli_formats::{gen, Coo, Csc, Csr, Dense, Dia, Ell, Jad, Triplets};
use bernoulli_ir::{run_dense, DenseEnv};

fn close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
            "element {i}: {x} vs {y}"
        );
    }
}

fn ref_mvm(t: &Triplets<f64>, x: &[f64]) -> Vec<f64> {
    let p = bernoulli_blas::kernels::mvm();
    let d = Dense::from_triplets(t);
    let mut env = DenseEnv::new()
        .param("M", t.nrows() as i64)
        .param("N", t.ncols() as i64)
        .vector("x", x.to_vec())
        .vector("y", vec![0.0; t.nrows()])
        .matrix("A", &d);
    run_dense(&p, &mut env).unwrap();
    env.take_vector("y")
}

fn ref_ts(t: &Triplets<f64>, b: &[f64]) -> Vec<f64> {
    let p = bernoulli_blas::kernels::ts();
    let d = Dense::from_triplets(t);
    let mut env = DenseEnv::new()
        .param("N", t.nrows() as i64)
        .vector("b", b.to_vec())
        .matrix("L", &d);
    run_dense(&p, &mut env).unwrap();
    env.take_vector("b")
}

fn workload() -> (Triplets<f64>, Vec<f64>) {
    let t = gen::structurally_symmetric(40, 240, 10, 3);
    let x = gen::dense_vector(40, 8);
    (t, x)
}

fn tri_workload() -> (Triplets<f64>, Vec<f64>) {
    let t = gen::structurally_symmetric(40, 240, 10, 3).lower_triangle_full_diag(2.5);
    let b = gen::dense_vector(40, 9);
    (t, b)
}

#[test]
fn synthesized_mvm_all_formats() {
    let (t, x) = workload();
    let (m, n) = (t.nrows() as i64, t.ncols() as i64);
    let expect = ref_mvm(&t, &x);

    let mut y = vec![0.0; t.nrows()];
    synth::mvm_csr(m, n, &Csr::from_triplets(&t), &x, &mut y);
    close(&y, &expect);

    let mut y = vec![0.0; t.nrows()];
    synth::mvm_csc(m, n, &Csc::from_triplets(&t), &x, &mut y);
    close(&y, &expect);

    let mut y = vec![0.0; t.nrows()];
    synth::mvm_coo(m, n, &Coo::from_triplets_shuffled(&t, 5), &x, &mut y);
    close(&y, &expect);

    let mut y = vec![0.0; t.nrows()];
    synth::mvm_dia(m, n, &Dia::from_triplets(&t), &x, &mut y);
    close(&y, &expect);

    let mut y = vec![0.0; t.nrows()];
    synth::mvm_ell(m, n, &Ell::from_triplets(&t), &x, &mut y);
    close(&y, &expect);

    let mut y = vec![0.0; t.nrows()];
    synth::mvm_jad(m, n, &Jad::from_triplets(&t), &x, &mut y);
    close(&y, &expect);
}

#[test]
fn synthesized_ts_all_formats() {
    let (t, b0) = tri_workload();
    let n = t.nrows() as i64;
    let expect = ref_ts(&t, &b0);

    let mut b = b0.clone();
    synth::ts_csr(n, &Csr::from_triplets(&t), &mut b);
    close(&b, &expect);

    let mut b = b0.clone();
    synth::ts_csc(n, &Csc::from_triplets(&t), &mut b);
    close(&b, &expect);

    let mut b = b0.clone();
    synth::ts_jad(n, &Jad::from_triplets(&t), &mut b);
    close(&b, &expect);

    let mut b = b0.clone();
    synth::ts_dia(n, &Dia::from_triplets(&t), &mut b);
    close(&b, &expect);
}

#[test]
fn synthesized_matches_handwritten_exactly_where_structure_agrees() {
    // CSR MVM: same loop structure, same accumulation order — bitwise
    // equal results.
    let (t, x) = workload();
    let a = Csr::from_triplets(&t);
    let mut y1 = vec![0.0; t.nrows()];
    hw::mvm_csr(&a, &x, &mut y1);
    let mut y2 = vec![0.0; t.nrows()];
    synth::mvm_csr(t.nrows() as i64, t.ncols() as i64, &a, &x, &mut y2);
    assert_eq!(y1, y2, "synthesized CSR MVM must be bitwise-identical");
}

#[test]
fn synthesized_ts_jad_matches_handwritten_bitwise() {
    let (t, b0) = tri_workload();
    let l = Jad::from_triplets(&t);
    let mut b1 = b0.clone();
    hw::ts_jad(&l, &mut b1);
    let mut b2 = b0.clone();
    synth::ts_jad(t.nrows() as i64, &l, &mut b2);
    assert_eq!(b1, b2, "synthesized JAD TS must match the Fig. 9 structure");
}

#[test]
fn synthesized_kernels_on_can1072_like() {
    // The actual evaluation input shape.
    let t = gen::can_1072_like();
    let l = t.lower_triangle_full_diag(1.0);
    let b0 = gen::dense_vector(1072, 13);
    let expect = ref_ts(&l, &b0);
    for fmt in ["csr", "csc", "jad"] {
        let mut b = b0.clone();
        match fmt {
            "csr" => synth::ts_csr(1072, &Csr::from_triplets(&l), &mut b),
            "csc" => synth::ts_csc(1072, &Csc::from_triplets(&l), &mut b),
            _ => synth::ts_jad(1072, &Jad::from_triplets(&l), &mut b),
        }
        close(&b, &expect);
    }
}

#[test]
fn synthesized_sky_kernels() {
    use bernoulli_formats::Sky;
    let (t, b0) = tri_workload();
    let n = t.nrows() as i64;
    let sky = Sky::from_triplets(&t);

    // TS: bitwise against the handwritten skyline solve.
    let expect = ref_ts(&t, &b0);
    let mut b = b0.clone();
    synth::ts_sky(n, &sky, &mut b);
    close(&b, &expect);
    let mut b2 = b0.clone();
    hw::ts_sky(&sky, &mut b2);
    assert_eq!(b, b2, "synthesized skyline TS matches handwritten bitwise");

    // MVM on the lower-triangular operand.
    let x = gen::dense_vector(t.nrows(), 2);
    let expect = ref_mvm(&t, &x);
    let mut y = vec![0.0; t.nrows()];
    synth::mvm_sky(n, n, &sky, &x, &mut y);
    close(&y, &expect);
}

#[test]
fn synthesized_blocked_kernels() {
    use bernoulli_formats::{discover_strips, Bsr, Vbr};
    // FEM-style workload with planted 2x2 dense blocks: the natural input
    // for both blocked formats.
    let t = gen::fem_blocked(40, 2, 2, 1.0, 21);
    let x = gen::dense_vector(40, 8);
    let (m, n) = (t.nrows() as i64, t.ncols() as i64);
    let expect = ref_mvm(&t, &x);

    let bsr = Bsr::from_triplets(&t, 2, 2);
    let mut y = vec![0.0; t.nrows()];
    synth::mvm_bsr2x2(m, n, &bsr, &x, &mut y);
    close(&y, &expect);

    let (rp, cp) = discover_strips(&t);
    let vbr = Vbr::from_triplets(&t, &rp, &cp);
    let mut y = vec![0.0; t.nrows()];
    synth::mvm_vbr(m, n, &vbr, &x, &mut y);
    close(&y, &expect);

    // Transposed MVM: symmetric pattern but values are not, so this is a
    // real transpose check against the dense reference.
    fn ref_mvmt_local(t: &Triplets<f64>, x: &[f64]) -> Vec<f64> {
        let p = bernoulli_blas::kernels::mvm_transposed();
        let d = Dense::from_triplets(t);
        let mut env = DenseEnv::new()
            .param("M", t.nrows() as i64)
            .param("N", t.ncols() as i64)
            .vector("x", x.to_vec())
            .vector("y", vec![0.0; t.ncols()])
            .matrix("A", &d);
        run_dense(&p, &mut env).unwrap();
        env.take_vector("y")
    }
    let expect_t = ref_mvmt_local(&t, &x);
    let mut y = vec![0.0; t.ncols()];
    synth::mvmt_bsr2x2(m, n, &bsr, &x, &mut y);
    close(&y, &expect_t);
    let mut y = vec![0.0; t.ncols()];
    synth::mvmt_vbr(m, n, &vbr, &x, &mut y);
    close(&y, &expect_t);
}

#[test]
fn synthesized_mvmt_kernels() {
    fn ref_mvmt(t: &Triplets<f64>, x: &[f64]) -> Vec<f64> {
        let p = bernoulli_blas::kernels::mvm_transposed();
        let d = Dense::from_triplets(t);
        let mut env = DenseEnv::new()
            .param("M", t.nrows() as i64)
            .param("N", t.ncols() as i64)
            .vector("x", x.to_vec())
            .vector("y", vec![0.0; t.ncols()])
            .matrix("A", &d);
        run_dense(&p, &mut env).unwrap();
        env.take_vector("y")
    }
    let (t, x) = workload();
    let (m, n) = (t.nrows() as i64, t.ncols() as i64);
    let expect = ref_mvmt(&t, &x);

    let mut y = vec![0.0; t.ncols()];
    synth::mvmt_csr(m, n, &Csr::from_triplets(&t), &x, &mut y);
    close(&y, &expect);

    let mut y = vec![0.0; t.ncols()];
    synth::mvmt_csc(m, n, &Csc::from_triplets(&t), &x, &mut y);
    close(&y, &expect);

    let mut y = vec![0.0; t.ncols()];
    synth::mvmt_coo(m, n, &Coo::from_triplets_shuffled(&t, 3), &x, &mut y);
    close(&y, &expect);

    // CSC transposed-MVM gathers along columns like CSR MVM gathers along
    // rows: bitwise equal to the handwritten version.
    let a = Csc::from_triplets(&t);
    let mut y1 = vec![0.0; t.ncols()];
    hw::mvmt_csc(&a, &x, &mut y1);
    let mut y2 = vec![0.0; t.ncols()];
    synth::mvmt_csc(m, n, &a, &x, &mut y2);
    assert_eq!(y1, y2);
}
