//! ELL kernels: fixed-width slot loops.

use bernoulli_formats::{Ell, Scalar};

/// `y += A·x`.
pub fn mvm_ell<T: Scalar>(a: &Ell<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    for i in 0..a.nrows {
        let mut acc = T::ZERO;
        let base = i * a.width;
        for s in 0..a.rowlen[i] {
            acc += a.values[base + s] * x[a.colind[base + s] as usize];
        }
        y[i] += acc;
    }
}

/// `y += Aᵀ·x` (scatter along the filled slots of each row).
pub fn mvmt_ell<T: Scalar>(a: &Ell<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    for i in 0..a.nrows {
        let xi = x[i];
        let base = i * a.width;
        for s in 0..a.rowlen[i] {
            y[a.colind[base + s] as usize] += a.values[base + s] * xi;
        }
    }
}

/// Lower triangular solve (row-oriented; full diagonal required).
pub fn ts_ell<T: Scalar>(l: &Ell<T>, b: &mut [T]) {
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), l.nrows, "b length");
    for i in 0..l.nrows {
        let base = i * l.width;
        let mut acc = b[i];
        let mut diag = T::ZERO;
        for s in 0..l.rowlen[i] {
            let c = l.colind[base + s] as usize;
            if c < i {
                acc -= l.values[base + s] * b[c];
            } else if c == i {
                diag = l.values[base + s];
            }
        }
        b[i] = acc / diag;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;

    #[test]
    fn mvm_matches_reference() {
        let (t, x) = workload();
        let a = Ell::from_triplets(&t);
        let mut y = vec![0.0; t.nrows()];
        mvm_ell(&a, &x, &mut y);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn mvmt_matches_reference() {
        let (t, x) = workload();
        let a = Ell::from_triplets(&t);
        let mut y = vec![0.0; t.ncols()];
        mvmt_ell(&a, &x, &mut y);
        assert_close(&y, &ref_mvmt(&t, &x));
    }

    #[test]
    fn ts_matches_reference() {
        let (t, b0) = tri_workload();
        let l = Ell::from_triplets(&t);
        let mut b = b0.clone();
        ts_ell(&l, &mut b);
        assert_close(&b, &ref_ts(&t, &b0));
    }
}
