//! Dense and sparse vector operations, including the two join strategies
//! of the common-enumeration ablation (paper §4.1, ref. \[11\]).

use bernoulli_formats::{HashVec, Scalar, SparseVec};

/// `y += alpha·x`.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dense dot product.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len());
    let mut acc = T::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm.
#[allow(clippy::needless_range_loop)]
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Sparse·sparse dot product by **merge join** over two sorted vectors.
pub fn spdot_merge<T: Scalar>(x: &SparseVec<T>, y: &SparseVec<T>) -> T {
    let mut acc = T::ZERO;
    let (mut i, mut j) = (0usize, 0usize);
    while i < x.ind.len() && j < y.ind.len() {
        match x.ind[i].cmp(&y.ind[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += x.values[i] * y.values[j];
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Sparse·sparse dot product by **hash join**: enumerate the sorted side,
/// probe the hashed side.
pub fn spdot_hash<T: Scalar>(x: &SparseVec<T>, y: &HashVec<T>) -> T {
    let mut acc = T::ZERO;
    for (k, &i) in x.ind.iter().enumerate() {
        if let Some(&slot) = y.index.get(&i) {
            acc += x.values[k] * y.values[slot];
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_formats::gen;

    #[allow(clippy::type_complexity)]
    fn pair() -> (Vec<(usize, f64)>, Vec<(usize, f64)>) {
        (
            gen::sparse_vector(200, 40, 1),
            gen::sparse_vector(200, 60, 2),
        )
    }

    fn dense_dot(a: &[(usize, f64)], b: &[(usize, f64)], n: usize) -> f64 {
        let mut da = vec![0.0; n];
        let mut db = vec![0.0; n];
        for &(i, v) in a {
            da[i] += v;
        }
        for &(i, v) in b {
            db[i] += v;
        }
        dot(&da, &db)
    }

    #[test]
    fn axpy_and_dot() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        assert_eq!(dot(&x, &x), 14.0);
        assert!((nrm2(&x) - 14.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn merge_join_matches_dense() {
        let (a, b) = pair();
        let x = SparseVec::from_pairs(200, &a);
        let y = SparseVec::from_pairs(200, &b);
        let got = spdot_merge(&x, &y);
        let expect = dense_dot(&a, &b, 200);
        assert!((got - expect).abs() < 1e-10, "{got} vs {expect}");
    }

    #[test]
    fn hash_join_matches_merge() {
        let (a, b) = pair();
        let x = SparseVec::from_pairs(200, &a);
        let ys = SparseVec::from_pairs(200, &b);
        let yh = HashVec::from_pairs(200, &b);
        assert!((spdot_merge(&x, &ys) - spdot_hash(&x, &yh)).abs() < 1e-10);
    }

    #[test]
    fn disjoint_vectors_dot_zero() {
        let x = SparseVec::from_pairs(10, &[(0, 1.0), (2, 2.0)]);
        let y = SparseVec::from_pairs(10, &[(1, 3.0), (3, 4.0)]);
        assert_eq!(spdot_merge(&x, &y), 0.0);
    }
}
