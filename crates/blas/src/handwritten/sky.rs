//! Skyline kernels: strip-mined row loops (the classic direct-solver
//! forward substitution).

use bernoulli_formats::{Scalar, Sky};

/// `y += A·x` over the skyline strips.
pub fn mvm_sky<T: Scalar>(a: &Sky<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.n, "x length");
    assert_eq!(y.len(), a.n, "y length");
    for r in 0..a.n {
        let mut acc = T::ZERO;
        let base = a.ptr[r];
        let lo = a.lo[r];
        for c in lo..=r {
            acc += a.values[base + (c - lo)] * x[c];
        }
        y[r] += acc;
    }
}

/// Lower triangular solve in place: forward substitution along strips
/// (the diagonal is the last strip cell — always structural).
pub fn ts_sky<T: Scalar>(l: &Sky<T>, b: &mut [T]) {
    assert_eq!(b.len(), l.n, "b length");
    for r in 0..l.n {
        let base = l.ptr[r];
        let lo = l.lo[r];
        let mut acc = b[r];
        for c in lo..r {
            acc -= l.values[base + (c - lo)] * b[c];
        }
        b[r] = acc / l.values[base + (r - lo)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;
    use bernoulli_formats::Sky;

    #[test]
    fn mvm_matches_reference() {
        let (t, x) = tri_workload(); // lower triangular fits the profile
        let a = Sky::from_triplets(&t);
        let mut y = vec![0.0; t.nrows()];
        mvm_sky(&a, &x[..t.nrows()], &mut y);
        assert_close(&y, &ref_mvm(&t, &x[..t.nrows()]));
    }

    #[test]
    fn ts_matches_reference() {
        let (t, b0) = tri_workload();
        let l = Sky::from_triplets(&t);
        let mut b = b0.clone();
        ts_sky(&l, &mut b);
        assert_close(&b, &ref_ts(&t, &b0));
    }
}
