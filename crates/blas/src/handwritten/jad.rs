//! JAD kernels (paper Appendix A).

use bernoulli_formats::{Jad, Scalar};

/// `y += A·x` walking the jagged diagonals — the access pattern JAD is
/// designed for (long inner loops, unit stride through `values`).
pub fn mvm_jad<T: Scalar>(a: &Jad<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    for d in 0..a.ndiags() {
        let lo = a.dptr[d];
        let hi = a.dptr[d + 1];
        for jj in lo..hi {
            let rr = jj - lo;
            y[a.iperm[rr]] += a.values[jj] * x[a.colind[jj]];
        }
    }
}

/// `y += Aᵀ·x` walking the jagged diagonals (scatter; `x` is gathered
/// through the row permutation).
pub fn mvmt_jad<T: Scalar>(a: &Jad<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    for d in 0..a.ndiags() {
        let lo = a.dptr[d];
        let hi = a.dptr[d + 1];
        for jj in lo..hi {
            let rr = jj - lo;
            y[a.colind[jj]] += a.values[jj] * x[a.iperm[rr]];
        }
    }
}

/// Lower triangular solve through the row-indexed perspective
/// (structurally the paper's Fig. 9 code, with the O(1) inverse
/// permutation instead of the paper's linear `unmap` scan).
pub fn ts_jad<T: Scalar>(l: &Jad<T>, b: &mut [T]) {
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), l.nrows, "b length");
    for r in 0..l.nrows {
        let rr = l.iperm_inv[r];
        let mut acc = b[r];
        let mut diag = T::ZERO;
        for d in 0..l.rowlen[rr] {
            let jj = l.dptr[d] + rr;
            let c = l.colind[jj];
            if c < r {
                acc -= l.values[jj] * b[c];
            } else if c == r {
                diag = l.values[jj];
            }
        }
        b[r] = acc / diag;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;

    #[test]
    fn mvm_matches_reference() {
        let (t, x) = workload();
        let a = Jad::from_triplets(&t);
        let mut y = vec![0.0; t.nrows()];
        mvm_jad(&a, &x, &mut y);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn mvmt_matches_reference() {
        let (t, x) = workload();
        let a = Jad::from_triplets(&t);
        let mut y = vec![0.0; t.ncols()];
        mvmt_jad(&a, &x, &mut y);
        assert_close(&y, &ref_mvmt(&t, &x));
    }

    #[test]
    fn ts_matches_reference() {
        let (t, b0) = tri_workload();
        let l = Jad::from_triplets(&t);
        let mut b = b0.clone();
        ts_jad(&l, &mut b);
        assert_close(&b, &ref_ts(&t, &b0));
    }

    #[test]
    fn ts_identity() {
        let n = 10;
        let mut t = bernoulli_formats::Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
        }
        t.normalize();
        let l = Jad::from_triplets(&t);
        let mut b = vec![4.0; n];
        ts_jad(&l, &mut b);
        assert!(b.iter().all(|&v| v == 2.0));
    }
}
