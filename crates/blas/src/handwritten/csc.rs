//! CSC kernels.

use bernoulli_formats::{Csc, Scalar};

/// `y += A·x` (scatter along columns).
pub fn mvm_csc<T: Scalar>(a: &Csc<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    for j in 0..a.ncols {
        let xj = x[j];
        for p in a.colptr[j]..a.colptr[j + 1] {
            y[a.rowind[p]] += a.values[p] * xj;
        }
    }
}

/// `y += Aᵀ·x` (gather along columns).
pub fn mvmt_csc<T: Scalar>(a: &Csc<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    for j in 0..a.ncols {
        let mut acc = T::ZERO;
        for p in a.colptr[j]..a.colptr[j + 1] {
            acc += a.values[p] * x[a.rowind[p]];
        }
        y[j] += acc;
    }
}

/// Lower triangular solve, column-oriented (the natural CSC order —
/// exactly the paper's Fig. 5 pseudocode).
pub fn ts_csc<T: Scalar>(l: &Csc<T>, b: &mut [T]) {
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), l.nrows, "b length");
    for j in 0..l.ncols {
        // Diagonal first (rows sorted: the first entry at or after row j).
        let rng = l.colptr[j]..l.colptr[j + 1];
        let mut diag = T::ZERO;
        for p in rng.clone() {
            if l.rowind[p] == j {
                diag = l.values[p];
                break;
            }
        }
        b[j] = b[j] / diag;
        let bj = b[j];
        for p in rng {
            let r = l.rowind[p];
            if r > j {
                b[r] -= l.values[p] * bj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;

    #[test]
    fn mvm_matches_reference() {
        let (t, x) = workload();
        let a = Csc::from_triplets(&t);
        let mut y = vec![0.0; t.nrows()];
        mvm_csc(&a, &x, &mut y);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn mvmt_matches_reference() {
        let (t, x) = workload();
        let a = Csc::from_triplets(&t);
        let mut y = vec![0.0; t.ncols()];
        mvmt_csc(&a, &x, &mut y);
        assert_close(&y, &ref_mvmt(&t, &x));
    }

    #[test]
    fn ts_matches_reference() {
        let (t, b0) = tri_workload();
        let l = Csc::from_triplets(&t);
        let mut b = b0.clone();
        ts_csc(&l, &mut b);
        assert_close(&b, &ref_ts(&t, &b0));
    }
}
