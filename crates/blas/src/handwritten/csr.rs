//! CSR kernels (the NIST reference loop structures).

use bernoulli_formats::{Csr, Scalar};

/// `y += A·x`, row-major accumulation.
pub fn mvm_csr<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    for i in 0..a.nrows {
        let mut acc = T::ZERO;
        for p in a.rowptr[i]..a.rowptr[i + 1] {
            acc += a.values[p] * x[a.colind[p]];
        }
        y[i] += acc;
    }
}

/// `y += Aᵀ·x` (scatter along rows).
pub fn mvmt_csr<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    for i in 0..a.nrows {
        let xi = x[i];
        for p in a.rowptr[i]..a.rowptr[i + 1] {
            y[a.colind[p]] += a.values[p] * xi;
        }
    }
}

/// Lower triangular solve `L·b' = b` in place; `L` must store its full
/// diagonal and only lower-triangle entries.
pub fn ts_csr<T: Scalar>(l: &Csr<T>, b: &mut [T]) {
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), l.nrows, "b length");
    for i in 0..l.nrows {
        let mut acc = b[i];
        let mut diag = T::ZERO;
        for p in l.rowptr[i]..l.rowptr[i + 1] {
            let c = l.colind[p];
            if c < i {
                acc -= l.values[p] * b[c];
            } else if c == i {
                diag = l.values[p];
            }
        }
        b[i] = acc / diag;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;

    #[test]
    fn mvm_matches_reference() {
        let (t, x) = workload();
        let a = Csr::from_triplets(&t);
        let mut y = vec![0.0; t.nrows()];
        mvm_csr(&a, &x, &mut y);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn mvmt_matches_reference() {
        let (t, x) = workload();
        let a = Csr::from_triplets(&t);
        let mut y = vec![0.0; t.ncols()];
        mvmt_csr(&a, &x, &mut y);
        assert_close(&y, &ref_mvmt(&t, &x));
    }

    #[test]
    fn ts_matches_reference() {
        let (t, b0) = tri_workload();
        let l = Csr::from_triplets(&t);
        let mut b = b0.clone();
        ts_csr(&l, &mut b);
        assert_close(&b, &ref_ts(&t, &b0));
    }

    #[test]
    fn mvm_accumulates() {
        let (t, x) = workload();
        let a = Csr::from_triplets(&t);
        let mut y = vec![1.0; t.nrows()];
        mvm_csr(&a, &x, &mut y);
        let expect: Vec<f64> = ref_mvm(&t, &x).iter().map(|v| v + 1.0).collect();
        assert_close(&y, &expect);
    }
}
