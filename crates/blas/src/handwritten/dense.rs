//! Dense kernels, for cross-checking and small-matrix baselines.

use bernoulli_formats::{Dense, Scalar};

/// `y += A·x`.
pub fn mvm_dense<T: Scalar>(a: &Dense<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    for i in 0..a.nrows {
        let mut acc = T::ZERO;
        let row = &a.data[i * a.ncols..(i + 1) * a.ncols];
        for (j, &v) in row.iter().enumerate() {
            acc += v * x[j];
        }
        y[i] += acc;
    }
}

/// Lower triangular solve in place.
pub fn ts_dense<T: Scalar>(l: &Dense<T>, b: &mut [T]) {
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), l.nrows, "b length");
    for i in 0..l.nrows {
        let mut acc = b[i];
        for j in 0..i {
            acc -= l.data[i * l.ncols + j] * b[j];
        }
        b[i] = acc / l.data[i * l.ncols + i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;
    use bernoulli_formats::Dense;

    #[test]
    fn mvm_matches_reference() {
        let (t, x) = workload();
        let a = Dense::from_triplets(&t);
        let mut y = vec![0.0; t.nrows()];
        mvm_dense(&a, &x, &mut y);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn ts_matches_reference() {
        let (t, b0) = tri_workload();
        let l = Dense::from_triplets(&t);
        let mut b = b0.clone();
        ts_dense(&l, &mut b);
        assert_close(&b, &ref_ts(&t, &b0));
    }
}
