//! BSR kernels: register-tiled block-row traversal.
//!
//! Each block row is processed with `r` register accumulators; common
//! square block sizes dispatch to monomorphized micro-kernels whose
//! `R x C` loops are compile-time constants, so LLVM fully unrolls the
//! block body (the "register blocking" that makes BSR a performance
//! format, not just a storage format). Other shapes fall back to a
//! generic loop with the same per-row accumulation order, so the
//! dispatch never changes results.

use bernoulli_formats::{Bsr, Scalar};

/// `y += A·x`, register-tiled over block rows.
pub fn mvm_bsr<T: Scalar>(a: &Bsr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    mvm_bsr_rows(a, x, y, 0, a.browptr.len() - 1);
}

/// `y += A·x` restricted to block rows `br_lo..br_hi`; `yb` holds the
/// output rows `br_lo*r..br_hi*r`. The parallel lane calls this per
/// chunk; per-row accumulation order (blocks ascending, columns
/// ascending within each block) is independent of the chunking, so
/// chunked runs are bitwise equal to the full sweep.
pub(crate) fn mvm_bsr_rows<T: Scalar>(
    a: &Bsr<T>,
    x: &[T],
    yb: &mut [T],
    br_lo: usize,
    br_hi: usize,
) {
    match (a.r, a.c) {
        (1, 1) => mvm_micro::<T, 1, 1>(a, x, yb, br_lo, br_hi),
        (2, 2) => mvm_micro::<T, 2, 2>(a, x, yb, br_lo, br_hi),
        (3, 3) => mvm_micro::<T, 3, 3>(a, x, yb, br_lo, br_hi),
        (4, 4) => mvm_micro::<T, 4, 4>(a, x, yb, br_lo, br_hi),
        (2, 1) => mvm_micro::<T, 2, 1>(a, x, yb, br_lo, br_hi),
        (1, 2) => mvm_micro::<T, 1, 2>(a, x, yb, br_lo, br_hi),
        (4, 2) => mvm_micro::<T, 4, 2>(a, x, yb, br_lo, br_hi),
        (2, 4) => mvm_micro::<T, 2, 4>(a, x, yb, br_lo, br_hi),
        _ => mvm_generic(a, x, yb, br_lo, br_hi),
    }
}

/// The unrolled micro-kernel: `R` accumulators live in registers across
/// the whole block row; each stored block contributes an `R x C`
/// multiply-add whose trip counts are compile-time constants.
fn mvm_micro<T: Scalar, const R: usize, const C: usize>(
    a: &Bsr<T>,
    x: &[T],
    yb: &mut [T],
    br_lo: usize,
    br_hi: usize,
) {
    debug_assert!(a.r == R && a.c == C);
    for br in br_lo..br_hi {
        let y0 = (br - br_lo) * R;
        let mut acc = [T::ZERO; R];
        acc.copy_from_slice(&yb[y0..y0 + R]);
        for b in a.browptr[br]..a.browptr[br + 1] {
            let j0 = a.bcolind[b] * C;
            let blk = &a.values[b * R * C..(b + 1) * R * C];
            let xs = &x[j0..j0 + C];
            for rr in 0..R {
                for cc in 0..C {
                    acc[rr] += blk[rr * C + cc] * xs[cc];
                }
            }
        }
        yb[y0..y0 + R].copy_from_slice(&acc);
    }
}

/// Generic fallback for uncommon block shapes — same per-row order as
/// the micro-kernels (blocks ascending, then columns), so dispatch is
/// invisible in the results.
fn mvm_generic<T: Scalar>(a: &Bsr<T>, x: &[T], yb: &mut [T], br_lo: usize, br_hi: usize) {
    let (r, c) = (a.r, a.c);
    for br in br_lo..br_hi {
        for rr in 0..r {
            let mut acc = yb[(br - br_lo) * r + rr];
            for b in a.browptr[br]..a.browptr[br + 1] {
                let j0 = a.bcolind[b] * c;
                let base = (b * r + rr) * c;
                for cc in 0..c {
                    acc += a.values[base + cc] * x[j0 + cc];
                }
            }
            yb[(br - br_lo) * r + rr] = acc;
        }
    }
}

/// `y += Aᵀ·x` — a scatter along block rows: each stored block
/// contributes its `R x C` terms column by column, rows ascending, the
/// same per-element order as the synthesized row-major kernels.
pub fn mvmt_bsr<T: Scalar>(a: &Bsr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    mvmt_bsr_rows(a, x, y, 0, a.browptr.len() - 1);
}

/// `y += Aᵀ·x` restricted to block rows `br_lo..br_hi`, scattering into
/// the full-length `y` (the parallel lane passes per-chunk buffers).
pub(crate) fn mvmt_bsr_rows<T: Scalar>(
    a: &Bsr<T>,
    x: &[T],
    y: &mut [T],
    br_lo: usize,
    br_hi: usize,
) {
    match (a.r, a.c) {
        (1, 1) => mvmt_micro::<T, 1, 1>(a, x, y, br_lo, br_hi),
        (2, 2) => mvmt_micro::<T, 2, 2>(a, x, y, br_lo, br_hi),
        (3, 3) => mvmt_micro::<T, 3, 3>(a, x, y, br_lo, br_hi),
        (4, 4) => mvmt_micro::<T, 4, 4>(a, x, y, br_lo, br_hi),
        _ => mvmt_generic(a, x, y, br_lo, br_hi),
    }
}

fn mvmt_micro<T: Scalar, const R: usize, const C: usize>(
    a: &Bsr<T>,
    x: &[T],
    y: &mut [T],
    br_lo: usize,
    br_hi: usize,
) {
    debug_assert!(a.r == R && a.c == C);
    for br in br_lo..br_hi {
        let xs = &x[br * R..br * R + R];
        for b in a.browptr[br]..a.browptr[br + 1] {
            let j0 = a.bcolind[b] * C;
            let blk = &a.values[b * R * C..(b + 1) * R * C];
            for cc in 0..C {
                // Each term scatters individually, rows ascending: for
                // any fixed output element this is the row-major order
                // the synthesized kernels use, so results agree bitwise.
                for rr in 0..R {
                    y[j0 + cc] += blk[rr * C + cc] * xs[rr];
                }
            }
        }
    }
}

fn mvmt_generic<T: Scalar>(a: &Bsr<T>, x: &[T], y: &mut [T], br_lo: usize, br_hi: usize) {
    let (r, c) = (a.r, a.c);
    for br in br_lo..br_hi {
        for b in a.browptr[br]..a.browptr[br + 1] {
            let j0 = a.bcolind[b] * c;
            for cc in 0..c {
                for rr in 0..r {
                    y[j0 + cc] += a.values[(b * r + rr) * c + cc] * x[br * r + rr];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;
    use bernoulli_formats::gen;

    #[test]
    fn mvm_matches_reference_common_and_generic_shapes() {
        for &(n, bs) in &[(40usize, 2usize), (42, 3), (40, 4), (35, 5), (40, 1)] {
            let t = gen::fem_blocked(n, bs, 2, 1.0, 17);
            let x = gen::dense_vector(n, 4);
            let a = Bsr::from_triplets(&t, bs, bs);
            let mut y = vec![0.0; n];
            mvm_bsr(&a, &x, &mut y);
            assert_close(&y, &ref_mvm(&t, &x));
        }
    }

    #[test]
    fn mvmt_matches_reference() {
        for &bs in &[2usize, 3, 5] {
            let n = 10 * bs;
            let t = gen::fem_blocked(n, bs, 2, 0.8, 9);
            let x = gen::dense_vector(n, 6);
            let a = Bsr::from_triplets(&t, bs, bs);
            let mut y = vec![0.0; n];
            mvmt_bsr(&a, &x, &mut y);
            assert_close(&y, &ref_mvmt(&t, &x));
        }
    }

    #[test]
    fn rectangular_blocks() {
        let t = gen::fem_blocked(24, 4, 1, 1.0, 3);
        let x = gen::dense_vector(24, 1);
        let expect = ref_mvm(&t, &x);
        for &(r, c) in &[(2usize, 4usize), (4, 2), (1, 2), (2, 1), (3, 4)] {
            let a = Bsr::from_triplets(&t, r, c);
            let mut y = vec![0.0; 24];
            mvm_bsr(&a, &x, &mut y);
            assert_close(&y, &expect);
        }
    }

    #[test]
    fn micro_and_generic_agree_bitwise() {
        // 2x2 hits the micro-kernel; the generic path must produce the
        // exact same bits (same per-row accumulation order).
        let t = gen::fem_blocked(40, 2, 2, 0.9, 5);
        let x = gen::dense_vector(40, 2);
        let a = Bsr::from_triplets(&t, 2, 2);
        let mut y1 = vec![0.5; 40];
        mvm_micro::<f64, 2, 2>(&a, &x, &mut y1, 0, a.browptr.len() - 1);
        let mut y2 = vec![0.5; 40];
        mvm_generic(&a, &x, &mut y2, 0, a.browptr.len() - 1);
        assert_eq!(y1, y2);
    }
}
