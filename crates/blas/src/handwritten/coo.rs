//! COO kernels: single pass over the triplet arrays.

use bernoulli_formats::{Coo, Scalar};

/// `y += A·x`.
pub fn mvm_coo<T: Scalar>(a: &Coo<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    for k in 0..a.values.len() {
        y[a.rows[k]] += a.values[k] * x[a.cols[k]];
    }
}

/// `y += Aᵀ·x`.
pub fn mvmt_coo<T: Scalar>(a: &Coo<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    for k in 0..a.values.len() {
        y[a.cols[k]] += a.values[k] * x[a.rows[k]];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;

    #[test]
    fn mvm_matches_reference() {
        let (t, x) = workload();
        let a = Coo::from_triplets_shuffled(&t, 99);
        let mut y = vec![0.0; t.nrows()];
        mvm_coo(&a, &x, &mut y);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn mvmt_matches_reference() {
        let (t, x) = workload();
        let a = Coo::from_triplets_shuffled(&t, 3);
        let mut y = vec![0.0; t.ncols()];
        mvmt_coo(&a, &x, &mut y);
        assert_close(&y, &ref_mvmt(&t, &x));
    }
}
