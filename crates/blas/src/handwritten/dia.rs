//! DIA kernels: strip-mined loops along stored diagonals.

use bernoulli_formats::{Dia, Scalar};

/// `y += A·x`, one pass per stored diagonal (`r = d + o`, `c = o`).
pub fn mvm_dia<T: Scalar>(a: &Dia<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    for k in 0..a.diags.len() {
        let d = a.diags[k];
        let base = a.ptr[k];
        let lo = a.lo[k];
        for o in lo..a.hi[k] {
            let v = a.values[base + (o - lo) as usize];
            y[(d + o) as usize] += v * x[o as usize];
        }
    }
}

/// `y += Aᵀ·x`, one pass per stored diagonal: the transpose swaps the
/// roles of `r = d + o` and `c = o`, so the scatter becomes a gather
/// (`y[o] += v · x[d + o]`).
pub fn mvmt_dia<T: Scalar>(a: &Dia<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    for k in 0..a.diags.len() {
        let d = a.diags[k];
        let base = a.ptr[k];
        let lo = a.lo[k];
        for o in lo..a.hi[k] {
            let v = a.values[base + (o - lo) as usize];
            y[o as usize] += v * x[(d + o) as usize];
        }
    }
}

/// Lower triangular solve by columns with per-diagonal indexed access:
/// for each column `j`, divide by the main diagonal then scatter down
/// the stored sub-diagonals (requires `d = 0` stored in full).
pub fn ts_dia<T: Scalar>(l: &Dia<T>, b: &mut [T]) {
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), l.nrows, "b length");
    let k0 = l
        .diags
        .binary_search(&0)
        .expect("triangular solve needs the main diagonal stored");
    let n = l.nrows as i64;
    for j in 0..n {
        let diag = l.values[l.ptr[k0] + (j - l.lo[k0]) as usize];
        b[j as usize] = b[j as usize] / diag;
        let bj = b[j as usize];
        // Scatter down every stored sub-diagonal that covers column j.
        for k in 0..l.diags.len() {
            let d = l.diags[k];
            if d <= 0 {
                continue;
            }
            if j >= l.lo[k] && j < l.hi[k] {
                let v = l.values[l.ptr[k] + (j - l.lo[k]) as usize];
                b[(d + j) as usize] -= v * bj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;
    use bernoulli_formats::gen;

    #[test]
    fn mvm_matches_reference() {
        let t = gen::banded(25, 3, 4);
        let x = gen::dense_vector(25, 5);
        let a = Dia::from_triplets(&t);
        let mut y = vec![0.0; 25];
        mvm_dia(&a, &x, &mut y);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn mvm_scattered_diagonals() {
        let (t, x) = workload();
        let a = Dia::from_triplets(&t);
        let mut y = vec![0.0; t.nrows()];
        mvm_dia(&a, &x, &mut y);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn mvmt_matches_reference() {
        let (t, x) = workload();
        let a = Dia::from_triplets(&t);
        let mut y = vec![0.0; t.ncols()];
        mvmt_dia(&a, &x, &mut y);
        assert_close(&y, &ref_mvmt(&t, &x));
    }

    #[test]
    fn ts_matches_reference() {
        let (t, b0) = tri_workload();
        let l = Dia::from_triplets(&t);
        let mut b = b0.clone();
        ts_dia(&l, &mut b);
        assert_close(&b, &ref_ts(&t, &b0));
    }

    #[test]
    #[should_panic(expected = "main diagonal")]
    fn ts_requires_diagonal() {
        let t = bernoulli_formats::Triplets::from_entries(3, 3, &[(2, 0, 1.0)]);
        let l = Dia::from_triplets(&t);
        let mut b = vec![1.0; 3];
        ts_dia(&l, &mut b);
    }
}
