//! VBR kernels: block-strip traversal with hoisted block metadata.
//!
//! Block extents are runtime data (`rpntr`/`cpntr`), so the register
//! tiling of the BSR micro-kernels is not available; instead each block
//! contributes contiguous row-slice walks folded into per-strip
//! accumulators that are reused across all of the strip's blocks, so
//! every `x` sub-vector is touched once per strip. Per-row/per-element
//! accumulation order matches the synthesized kernels exactly.

use bernoulli_formats::{Scalar, Vbr};

/// `y += A·x`, one block strip at a time.
pub fn mvm_vbr<T: Scalar>(a: &Vbr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    mvm_vbr_strips(a, x, y, 0, a.rpntr.len() - 1);
}

/// `y += A·x` restricted to block strips `br_lo..br_hi`; `yb` holds the
/// output rows `rpntr[br_lo]..rpntr[br_hi]`. Per-row accumulation order
/// (blocks ascending, columns ascending within each block) is
/// independent of the chunking, so the parallel lane's chunked runs are
/// bitwise equal to the full sweep.
pub(crate) fn mvm_vbr_strips<T: Scalar>(
    a: &Vbr<T>,
    x: &[T],
    yb: &mut [T],
    br_lo: usize,
    br_hi: usize,
) {
    let mut acc: Vec<T> = Vec::new();
    let y0 = a.rpntr[br_lo];
    for br in br_lo..br_hi {
        let h = a.rpntr[br + 1] - a.rpntr[br];
        let base = a.rpntr[br] - y0;
        acc.clear();
        acc.extend_from_slice(&yb[base..base + h]);
        for b in a.bpntrb[br]..a.bpntre[br] {
            let bc = a.bindx[b];
            let j0 = a.cpntr[bc];
            let w = a.cpntr[bc + 1] - j0;
            let xs = &x[j0..j0 + w];
            for (rr, a_rr) in acc.iter_mut().enumerate() {
                // Terms fold directly into the row accumulator (no
                // per-block partial sum): blocks ascending then columns
                // ascending is exactly the synthesized kernels' order,
                // so results agree bitwise.
                let row = &a.val[a.indx[b] + rr * w..a.indx[b] + (rr + 1) * w];
                for (v, xv) in row.iter().zip(xs) {
                    *a_rr += *v * *xv;
                }
            }
        }
        yb[base..base + h].copy_from_slice(&acc);
    }
}

/// `y += Aᵀ·x` — a scatter along block strips; each block's terms
/// scatter column by column, strip rows ascending, the same
/// per-element order as the synthesized row-major kernels.
pub fn mvmt_vbr<T: Scalar>(a: &Vbr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    mvmt_vbr_strips(a, x, y, 0, a.rpntr.len() - 1);
}

/// `y += Aᵀ·x` restricted to block strips `br_lo..br_hi`, scattering
/// into the full-length `y` (the parallel lane passes per-chunk
/// buffers).
pub(crate) fn mvmt_vbr_strips<T: Scalar>(
    a: &Vbr<T>,
    x: &[T],
    y: &mut [T],
    br_lo: usize,
    br_hi: usize,
) {
    for br in br_lo..br_hi {
        let r0 = a.rpntr[br];
        let h = a.rpntr[br + 1] - r0;
        let xs = &x[r0..r0 + h];
        for b in a.bpntrb[br]..a.bpntre[br] {
            let bc = a.bindx[b];
            let j0 = a.cpntr[bc];
            let w = a.cpntr[bc + 1] - j0;
            let blk = &a.val[a.indx[b]..a.indx[b] + h * w];
            for cc in 0..w {
                // Rows scatter individually (ascending), matching the
                // synthesized row-major kernels' per-element order.
                for (rr, &xv) in xs.iter().enumerate() {
                    y[j0 + cc] += blk[rr * w + cc] * xv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;
    use bernoulli_formats::{discover_strips, gen};

    #[test]
    fn mvm_matches_reference() {
        for &(n, bs) in &[(40usize, 2usize), (42, 3), (36, 4)] {
            let t = gen::fem_blocked(n, bs, 2, 1.0, 19);
            let (rp, cp) = discover_strips(&t);
            let a = Vbr::from_triplets(&t, &rp, &cp);
            let x = gen::dense_vector(n, 4);
            let mut y = vec![0.0; n];
            mvm_vbr(&a, &x, &mut y);
            assert_close(&y, &ref_mvm(&t, &x));
        }
    }

    #[test]
    fn mvm_irregular_strips() {
        // Partial fill breaks the uniform strips, so discovery produces
        // genuinely variable strip sizes.
        let t = gen::fem_blocked(45, 3, 1, 0.6, 23);
        let (rp, cp) = discover_strips(&t);
        assert!(rp.len() > 2, "fill < 1 should fragment the strips");
        let a = Vbr::from_triplets(&t, &rp, &cp);
        let x = gen::dense_vector(45, 5);
        let mut y = vec![0.0; 45];
        mvm_vbr(&a, &x, &mut y);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn mvmt_matches_reference() {
        let t = gen::fem_blocked(42, 3, 2, 0.9, 31);
        let (rp, cp) = discover_strips(&t);
        let a = Vbr::from_triplets(&t, &rp, &cp);
        let x = gen::dense_vector(42, 7);
        let mut y = vec![0.0; 42];
        mvmt_vbr(&a, &x, &mut y);
        assert_close(&y, &ref_mvmt(&t, &x));
    }
}
