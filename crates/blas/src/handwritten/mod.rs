//! Hand-written, format-specialized kernels — the NIST Sparse BLAS C
//! library stand-in (paper §5).
#![allow(clippy::needless_range_loop)] // indexed loops mirror the reference algorithms
//!
//! Each kernel is written the way the reference algorithms do it: direct
//! indexing of the format's arrays, no abstraction layers. The paper
//! found its generated code "structurally equivalent" to these; our
//! fidelity tests in `synth` check the same property for the emitted
//! kernels, and the benchmarks compare their speed.

pub mod bsr;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod ell;
pub mod jad;
pub mod sky;
pub mod vbr;
pub mod vecops;

pub use bsr::{mvm_bsr, mvmt_bsr};
pub use coo::{mvm_coo, mvmt_coo};
pub use csc::{mvm_csc, mvmt_csc, ts_csc};
pub use csr::{mvm_csr, mvmt_csr, ts_csr};
pub use dense::{mvm_dense, ts_dense};
pub use dia::{mvm_dia, mvmt_dia, ts_dia};
pub use ell::{mvm_ell, mvmt_ell, ts_ell};
pub use jad::{mvm_jad, mvmt_jad, ts_jad};
pub use sky::{mvm_sky, ts_sky};
pub use vbr::{mvm_vbr, mvmt_vbr};
pub use vecops::{axpy, dot, nrm2, spdot_hash, spdot_merge};

#[cfg(test)]
pub(crate) mod testutil {
    use bernoulli_formats::{gen, Dense, Triplets};
    use bernoulli_ir::{run_dense, DenseEnv};

    /// Reference y += A x through the dense executor.
    pub fn ref_mvm(t: &Triplets<f64>, x: &[f64]) -> Vec<f64> {
        let p = crate::kernels::mvm();
        let d = Dense::from_triplets(t);
        let mut env = DenseEnv::new()
            .param("M", t.nrows() as i64)
            .param("N", t.ncols() as i64)
            .vector("x", x.to_vec())
            .vector("y", vec![0.0; t.nrows()])
            .matrix("A", &d);
        run_dense(&p, &mut env).unwrap();
        env.take_vector("y")
    }

    /// Reference y += Aᵀ x.
    pub fn ref_mvmt(t: &Triplets<f64>, x: &[f64]) -> Vec<f64> {
        let p = crate::kernels::mvm_transposed();
        let d = Dense::from_triplets(t);
        let mut env = DenseEnv::new()
            .param("M", t.nrows() as i64)
            .param("N", t.ncols() as i64)
            .vector("x", x.to_vec())
            .vector("y", vec![0.0; t.ncols()])
            .matrix("A", &d);
        run_dense(&p, &mut env).unwrap();
        env.take_vector("y")
    }

    /// Reference triangular solve (in-place on b).
    pub fn ref_ts(t: &Triplets<f64>, b: &[f64]) -> Vec<f64> {
        let p = crate::kernels::ts();
        let d = Dense::from_triplets(t);
        let mut env = DenseEnv::new()
            .param("N", t.nrows() as i64)
            .vector("b", b.to_vec())
            .matrix("L", &d);
        run_dense(&p, &mut env).unwrap();
        env.take_vector("b")
    }

    pub fn workload() -> (Triplets<f64>, Vec<f64>) {
        let t = gen::structurally_symmetric(30, 160, 9, 77);
        let x = gen::dense_vector(30, 5);
        (t, x)
    }

    pub fn tri_workload() -> (Triplets<f64>, Vec<f64>) {
        let t = gen::structurally_symmetric(30, 160, 9, 77).lower_triangle_full_diag(2.0);
        let b = gen::dense_vector(30, 6);
        (t, b)
    }

    pub fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                "element {i}: {x} vs {y}"
            );
        }
    }
}
