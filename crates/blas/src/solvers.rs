//! Format-independent iterative methods (paper §1 motivation).
//!
//! These are the "high-level iterative codes \[written\] just once" that
//! the PETSc-style layering demands: every solver takes the
//! matrix–vector product as a closure, so it runs unchanged over any
//! format's kernel — handwritten, generic, or synthesized.

use crate::handwritten::vecops::{axpy, dot, nrm2};

/// The vector primitives an iterative solver consumes, abstracted so
/// one solver body runs sequential or parallel: the defaults are the
/// sequential [`crate::handwritten::vecops`] loops, and
/// [`crate::par::ParOps`] overrides each with a pool-parallel version.
pub trait VectorOps: Sync {
    /// `y += alpha·x`.
    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        axpy(alpha, x, y);
    }
    /// Dot product.
    fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        dot(x, y)
    }
    /// Euclidean norm.
    fn nrm2(&self, x: &[f64]) -> f64 {
        nrm2(x)
    }
    /// `p = r + beta·p` (the CG direction update).
    fn scal_add(&self, beta: f64, p: &mut [f64], r: &[f64]) {
        for (pi, &ri) in p.iter_mut().zip(r) {
            *pi = ri + beta * *pi;
        }
    }
    /// `Σ (b[i] − ax[i])²` (the Jacobi residual accumulation).
    fn diff_norm_sq(&self, b: &[f64], ax: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (bi, axi) in b.iter().zip(ax) {
            let r = bi - axi;
            acc += r * r;
        }
        acc
    }
    /// `x[i] += (b[i] − ax[i]) / diag[i]` (the Jacobi correction).
    fn diag_correct(&self, x: &mut [f64], b: &[f64], ax: &[f64], diag: &[f64]) {
        for i in 0..x.len() {
            x[i] += (b[i] - ax[i]) / diag[i];
        }
    }
}

/// Sequential vector operations (the trait defaults).
pub struct SeqOps;

impl VectorOps for SeqOps {}

/// Outcome of an iterative solve.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A·x‖₂`.
    pub residual: f64,
    /// Converged below the tolerance?
    pub converged: bool,
}

/// Conjugate gradients for SPD systems. `matvec(v, out)` must compute
/// `out = A·v` (it will be called with `out` zeroed).
pub fn cg(
    matvec: &mut dyn FnMut(&[f64], &mut [f64]),
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> SolveStats {
    cg_with(&SeqOps, matvec, b, x, tol, max_iter)
}

/// [`cg`] parameterized over the vector primitives.
pub fn cg_with(
    ops: &dyn VectorOps,
    matvec: &mut dyn FnMut(&[f64], &mut [f64]),
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> SolveStats {
    let n = b.len();
    assert_eq!(x.len(), n);
    let mut r = vec![0.0; n];
    let mut ax = vec![0.0; n];
    matvec(x, &mut ax);
    for i in 0..n {
        r[i] = b[i] - ax[i];
    }
    let mut p = r.clone();
    let mut rs_old = ops.dot(&r, &r);
    let bnorm = ops.nrm2(b).max(1e-300);

    for it in 0..max_iter {
        if rs_old.sqrt() / bnorm <= tol {
            return SolveStats {
                iterations: it,
                residual: rs_old.sqrt(),
                converged: true,
            };
        }
        let mut ap = vec![0.0; n];
        matvec(&p, &mut ap);
        let alpha = rs_old / ops.dot(&p, &ap);
        ops.axpy(alpha, &p, x);
        ops.axpy(-alpha, &ap, &mut r);
        let rs_new = ops.dot(&r, &r);
        let beta = rs_new / rs_old;
        ops.scal_add(beta, &mut p, &r);
        rs_old = rs_new;
    }
    SolveStats {
        iterations: max_iter,
        residual: rs_old.sqrt(),
        converged: rs_old.sqrt() / bnorm <= tol,
    }
}

/// Jacobi iteration `x ← D⁻¹(b − (A − D)x)`; `diag` is the matrix
/// diagonal.
pub fn jacobi(
    matvec: &mut dyn FnMut(&[f64], &mut [f64]),
    diag: &[f64],
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> SolveStats {
    jacobi_with(&SeqOps, matvec, diag, b, x, tol, max_iter)
}

/// [`jacobi`] parameterized over the vector primitives.
pub fn jacobi_with(
    ops: &dyn VectorOps,
    matvec: &mut dyn FnMut(&[f64], &mut [f64]),
    diag: &[f64],
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> SolveStats {
    let n = b.len();
    let bnorm = ops.nrm2(b).max(1e-300);
    let mut ax = vec![0.0; n];
    for it in 0..max_iter {
        ax.iter_mut().for_each(|v| *v = 0.0);
        matvec(x, &mut ax);
        let res = ops.diff_norm_sq(b, &ax).sqrt();
        if res / bnorm <= tol {
            return SolveStats {
                iterations: it,
                residual: res,
                converged: true,
            };
        }
        // x_new = x + (b - Ax) / d
        ops.diag_correct(x, b, &ax, diag);
    }
    ax.iter_mut().for_each(|v| *v = 0.0);
    matvec(x, &mut ax);
    let res = ops.diff_norm_sq(b, &ax).sqrt();
    SolveStats {
        iterations: max_iter,
        residual: res,
        converged: res / bnorm <= tol,
    }
}

/// Power iteration for the dominant eigenpair — the paper's introduction
/// names web-search/eigenvector workloads as a sparse MVM driver.
/// Returns `(eigenvalue, iterations)` and leaves the eigenvector in `x`.
pub fn power_iteration(
    matvec: &mut dyn FnMut(&[f64], &mut [f64]),
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> (f64, usize) {
    let n = x.len();
    let norm = nrm2(x).max(1e-300);
    x.iter_mut().for_each(|v| *v /= norm);
    let mut lambda = 0.0;
    for it in 0..max_iter {
        let mut ax = vec![0.0; n];
        matvec(x, &mut ax);
        let new_lambda = dot(x, &ax);
        let norm = nrm2(&ax).max(1e-300);
        for i in 0..n {
            x[i] = ax[i] / norm;
        }
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0) {
            return (new_lambda, it + 1);
        }
        lambda = new_lambda;
    }
    (lambda, max_iter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::mvm_csr;
    use bernoulli_formats::{gen, Csr, SparseMatrix};

    #[test]
    fn cg_solves_poisson() {
        let t = gen::poisson2d(12);
        let n = t.nrows();
        let a = Csr::from_triplets(&t);
        let b = gen::dense_vector(n, 11);
        let mut x = vec![0.0; n];
        let stats = cg(&mut |v, out| mvm_csr(&a, v, out), &b, &mut x, 1e-10, 2000);
        assert!(stats.converged, "residual {}", stats.residual);
        // Verify residual independently.
        let mut ax = vec![0.0; n];
        mvm_csr(&a, &x, &mut ax);
        let res: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-8, "res {res}");
    }

    #[test]
    fn jacobi_converges_on_diagonally_dominant() {
        let t = gen::banded(40, 2, 9);
        let n = t.nrows();
        let a = Csr::from_triplets(&t);
        let diag: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        let b = gen::dense_vector(n, 4);
        let mut x = vec![0.0; n];
        let stats = jacobi(
            &mut |v, out| mvm_csr(&a, v, out),
            &diag,
            &b,
            &mut x,
            1e-10,
            5000,
        );
        assert!(stats.converged, "residual {}", stats.residual);
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        // Diagonal matrix with known dominant eigenvalue 9.
        let mut t = bernoulli_formats::Triplets::new(5, 5);
        for (i, v) in [9.0, 3.0, 2.0, 1.0, 0.5].iter().enumerate() {
            t.push(i, i, *v);
        }
        t.normalize();
        let a = Csr::from_triplets(&t);
        let mut x = vec![1.0; 5];
        let (lambda, _) = power_iteration(&mut |v, out| mvm_csr(&a, v, out), &mut x, 1e-12, 500);
        assert!((lambda - 9.0).abs() < 1e-6, "lambda {lambda}");
        assert!(x[0].abs() > 0.999, "eigenvector {x:?}");
    }

    #[test]
    fn cg_zero_rhs_converges_immediately() {
        let t = gen::poisson2d(4);
        let a = Csr::from_triplets(&t);
        let b = vec![0.0; 16];
        let mut x = vec![0.0; 16];
        let stats = cg(&mut |v, out| mvm_csr(&a, v, out), &b, &mut x, 1e-12, 10);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }
}
