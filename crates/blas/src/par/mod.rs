//! Parallel execution subsystem (S32): worker pool, nnz-balanced
//! partitioning, parallel kernels for every stored format, a
//! level-scheduled triangular solve and parallel vector operations.
//!
//! This replaces the seed's `parallel.rs` (a single CSR MVM over
//! per-call scoped threads) with a layered subsystem:
//!
//! - [`Pool`] (re-exported from `bernoulli-pool`, shared with the
//!   synthesis search) — a persistent, lazily-initialized worker pool
//!   (`BERNOULLI_THREADS` overrides its size) executing chunked jobs
//!   with dynamic chunk stealing;
//! - [`partition`] — nnz-balanced chunk boundaries derived from each
//!   format's compressed pointer structure;
//! - [`mvm`] — `y += A·x` and `y += Aᵀ·x` for CSR, CSC, ELL, JAD and
//!   DIA;
//! - [`trisolve`] — wavefront (level-scheduled) lower triangular solve
//!   for CSR;
//! - [`vecops`] — axpy/dot/norm and the fused vector updates the
//!   iterative solvers need;
//! - [`solvers`] — parallel-capable conjugate gradients and Jacobi,
//!   sharing the sequential solver bodies through
//!   [`crate::solvers::VectorOps`].
//!
//! # Determinism
//!
//! Every kernel here is **deterministic**: its result is a pure
//! function of its inputs and the `nthreads` argument, independent of
//! the pool size and of scheduling. Gather-shaped kernels (one writer
//! per output element, accumulation order identical to the sequential
//! kernel) are additionally **bitwise equal** to their sequential
//! counterparts at every thread count: `par_mvm_csr`, `par_mvm_ell`,
//! `par_mvm_dia`, `par_mvm_bsr`, `par_mvm_vbr`, `par_mvmt_csc`,
//! `par_mvmt_dia`, `par_ts_csr` and `par_axpy` (and `par_mvm_jad` when
//! `y` starts zeroed). Scatter-shaped kernels (`par_mvm_csc`,
//! `par_mvmt_csr`, `par_mvmt_ell`, `par_mvmt_jad`, `par_mvmt_bsr`,
//! `par_mvmt_vbr`) and reductions (`par_dot`) combine per-chunk partial
//! results in fixed chunk order — run-to-run reproducible, equal to
//! sequential up to floating-point reassociation.

pub mod loaded;
pub mod mvm;
pub mod partition;
pub mod solvers;
pub mod trisolve;
pub mod vecops;

pub use bernoulli_pool::{default_threads, Pool, THREADS_ENV};
pub use loaded::{
    par_loaded_mvm_bsr, par_loaded_mvm_csr, par_loaded_mvm_ell, par_loaded_mvm_vbr, par_run_rows,
};
pub use mvm::{
    par_mvm_bsr, par_mvm_csc, par_mvm_csr, par_mvm_dia, par_mvm_ell, par_mvm_jad, par_mvm_vbr,
    par_mvmt_bsr, par_mvmt_csc, par_mvmt_csr, par_mvmt_dia, par_mvmt_ell, par_mvmt_jad,
    par_mvmt_vbr,
};
pub use solvers::{cg, cg_csr, jacobi, jacobi_csr, ParOps};
pub use trisolve::{par_ts_csr, par_ts_csr_scheduled, LevelSchedule};
pub use vecops::{par_axpy, par_dot, par_nrm2};

/// Shared mutable handle to a slice whose elements are written by at
/// most one pool chunk each.
///
/// The pool broadcasts one `Fn(usize)` to all workers, so a kernel
/// cannot hand each chunk an exclusive `&mut` sub-slice through the
/// type system; instead the kernels guarantee disjointness structurally
/// (contiguous row blocks, permutations, per-chunk buffers) and go
/// through this pointer. Every `unsafe` use in this module tree is one
/// of these access patterns.
pub(crate) struct SlicePtr<T>(*mut T);

// SAFETY: access is restricted to disjoint elements per chunk (writes)
// or elements no chunk writes (reads); see each call site.
unsafe impl<T: Send> Send for SlicePtr<T> {}
unsafe impl<T: Send> Sync for SlicePtr<T> {}

impl<T> SlicePtr<T> {
    pub(crate) fn new(s: &mut [T]) -> SlicePtr<T> {
        SlicePtr(s.as_mut_ptr())
    }

    /// Exclusive view of `lo..hi`.
    ///
    /// # Safety
    /// `lo..hi` must be in bounds and not overlap any range another
    /// chunk touches while this view is alive.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(lo), hi - lo)
    }

    /// Exclusive reference to element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and written by no other chunk while this
    /// reference is alive.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn at_mut(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

impl<T: Copy> SlicePtr<T> {
    /// Reads element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and not concurrently written.
    pub(crate) unsafe fn read(&self, i: usize) -> T {
        *self.0.add(i)
    }
}
