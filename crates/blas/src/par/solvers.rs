//! End-to-end parallel iterative solvers.
//!
//! [`ParOps`] plugs the pool-parallel vector operations into the
//! solver bodies of [`crate::solvers`]; paired with a parallel MVM
//! closure (or the [`cg_csr`]/[`jacobi_csr`] convenience wrappers)
//! every flop of an iteration — matrix product, dots, axpys, residual
//! and correction sweeps — runs on the worker pool. Results stay
//! deterministic: every primitive is a pure function of its inputs and
//! `nthreads`.

use super::vecops;
use crate::par::mvm::par_mvm_csr;
use crate::solvers::{cg_with, jacobi_with, SolveStats, VectorOps};
use bernoulli_formats::Csr;

/// Pool-parallel [`VectorOps`] at a fixed partition granularity.
pub struct ParOps {
    /// Chunk count handed to every vector primitive.
    pub nthreads: usize,
}

impl ParOps {
    /// Ops splitting every vector into `nthreads` chunks.
    pub fn new(nthreads: usize) -> ParOps {
        ParOps {
            nthreads: nthreads.max(1),
        }
    }
}

impl VectorOps for ParOps {
    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        vecops::par_axpy(alpha, x, y, self.nthreads);
    }
    fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        vecops::par_dot(x, y, self.nthreads)
    }
    fn nrm2(&self, x: &[f64]) -> f64 {
        vecops::par_nrm2(x, self.nthreads)
    }
    fn scal_add(&self, beta: f64, p: &mut [f64], r: &[f64]) {
        vecops::par_scal_add(beta, p, r, self.nthreads);
    }
    fn diff_norm_sq(&self, b: &[f64], ax: &[f64]) -> f64 {
        vecops::par_diff_norm_sq(b, ax, self.nthreads)
    }
    fn diag_correct(&self, x: &mut [f64], b: &[f64], ax: &[f64], diag: &[f64]) {
        vecops::par_diag_correct(x, b, ax, diag, self.nthreads);
    }
}

/// Parallel conjugate gradients with a caller-supplied matrix product.
pub fn cg(
    matvec: &mut dyn FnMut(&[f64], &mut [f64]),
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    nthreads: usize,
) -> SolveStats {
    let stats = cg_with(&ParOps::new(nthreads), matvec, b, x, tol, max_iter);
    bernoulli_trace::counter!("par.cg.solves");
    bernoulli_trace::counter!("par.cg.iters", stats.iterations);
    stats
}

/// Parallel Jacobi iteration with a caller-supplied matrix product.
#[allow(clippy::too_many_arguments)]
pub fn jacobi(
    matvec: &mut dyn FnMut(&[f64], &mut [f64]),
    diag: &[f64],
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    nthreads: usize,
) -> SolveStats {
    let stats = jacobi_with(&ParOps::new(nthreads), matvec, diag, b, x, tol, max_iter);
    bernoulli_trace::counter!("par.jacobi.solves");
    bernoulli_trace::counter!("par.jacobi.iters", stats.iterations);
    stats
}

/// Fully parallel CG over a CSR matrix: [`par_mvm_csr`] plus
/// [`ParOps`].
pub fn cg_csr(
    a: &Csr<f64>,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    nthreads: usize,
) -> SolveStats {
    cg(
        &mut |v, out| par_mvm_csr(a, v, out, nthreads),
        b,
        x,
        tol,
        max_iter,
        nthreads,
    )
}

/// Fully parallel Jacobi over a CSR matrix.
pub fn jacobi_csr(
    a: &Csr<f64>,
    diag: &[f64],
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    nthreads: usize,
) -> SolveStats {
    jacobi(
        &mut |v, out| par_mvm_csr(a, v, out, nthreads),
        diag,
        b,
        x,
        tol,
        max_iter,
        nthreads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::mvm_csr;
    use bernoulli_formats::{gen, SparseMatrix};

    #[test]
    fn parallel_cg_solves_poisson() {
        let t = gen::poisson2d(12);
        let n = t.nrows();
        let a = Csr::from_triplets(&t);
        let b = gen::dense_vector(n, 11);
        for threads in [1, 4] {
            let mut x = vec![0.0; n];
            let stats = cg_csr(&a, &b, &mut x, 1e-10, 2000, threads);
            assert!(stats.converged, "threads {threads}: {}", stats.residual);
            let mut ax = vec![0.0; n];
            mvm_csr(&a, &x, &mut ax);
            let res: f64 = b
                .iter()
                .zip(&ax)
                .map(|(bi, axi)| (bi - axi) * (bi - axi))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-8, "threads {threads}: res {res}");
        }
    }

    #[test]
    fn parallel_cg_is_deterministic() {
        let t = gen::poisson2d(10);
        let n = t.nrows();
        let a = Csr::from_triplets(&t);
        let b = gen::dense_vector(n, 3);
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let s1 = cg_csr(&a, &b, &mut x1, 1e-10, 2000, 4);
        let s2 = cg_csr(&a, &b, &mut x2, 1e-10, 2000, 4);
        assert_eq!(x1, x2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn single_thread_matches_sequential_solver() {
        // nthreads == 1 means one chunk everywhere: the parallel solver
        // must produce bitwise the sequential solver's iterates.
        let t = gen::poisson2d(8);
        let n = t.nrows();
        let a = Csr::from_triplets(&t);
        let b = gen::dense_vector(n, 2);
        let mut x_seq = vec![0.0; n];
        let mut x_par = vec![0.0; n];
        let s_seq = crate::solvers::cg(
            &mut |v, out| mvm_csr(&a, v, out),
            &b,
            &mut x_seq,
            1e-10,
            500,
        );
        let s_par = cg_csr(&a, &b, &mut x_par, 1e-10, 500, 1);
        assert_eq!(x_seq, x_par);
        assert_eq!(s_seq, s_par);
    }

    #[test]
    fn parallel_jacobi_converges() {
        let t = gen::banded(40, 2, 9);
        let n = t.nrows();
        let a = Csr::from_triplets(&t);
        let diag: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        let b = gen::dense_vector(n, 4);
        let mut x = vec![0.0; n];
        let stats = jacobi_csr(&a, &diag, &b, &mut x, 1e-10, 5000, 4);
        assert!(stats.converged, "residual {}", stats.residual);
    }
}
