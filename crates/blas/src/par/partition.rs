//! Work-balanced chunk boundaries for each format's parallel axis.
//!
//! CSR and CSC carry their cumulative-cost arrays natively (`rowptr`,
//! `colptr`); this module derives the equivalent prefix arrays for the
//! formats that don't — per-row fill for ELL, per-permuted-row fill for
//! JAD, and per-row / per-column stored-diagonal coverage for DIA — and
//! feeds them all through
//! [`bernoulli_formats::partition::split_ptr_by_cost`].

pub use bernoulli_formats::partition::split_even;
use bernoulli_formats::partition::split_ptr_by_cost;
use bernoulli_formats::{Dia, Ell, Jad, Scalar};

/// nnz-balanced row-block boundaries for an ELL matrix (cost of row `r`
/// is its fill `rowlen[r]`, not the padded `width`).
pub fn ell_row_blocks<T: Scalar>(a: &Ell<T>, nblocks: usize) -> Vec<usize> {
    split_ptr_by_cost(&prefix(a.rowlen.iter().copied()), nblocks)
}

/// nnz-balanced *permuted*-row-block boundaries for a JAD matrix; block
/// `k` spans permuted rows `b[k]..b[k+1]`, i.e. original rows
/// `iperm[b[k]..b[k+1]]`.
pub fn jad_row_blocks<T: Scalar>(a: &Jad<T>, nblocks: usize) -> Vec<usize> {
    split_ptr_by_cost(&prefix(a.rowlen.iter().copied()), nblocks)
}

/// Balanced row-block boundaries for a DIA matrix; the cost of row `r`
/// is the number of stored diagonals covering it.
pub fn dia_row_blocks<T: Scalar>(a: &Dia<T>, nblocks: usize) -> Vec<usize> {
    split_ptr_by_cost(&dia_coverage(a.nrows, a, true), nblocks)
}

/// Balanced column-block boundaries for a DIA matrix; the cost of
/// column `c` is the number of stored diagonals covering it.
pub fn dia_col_blocks<T: Scalar>(a: &Dia<T>, nblocks: usize) -> Vec<usize> {
    split_ptr_by_cost(&dia_coverage(a.ncols, a, false), nblocks)
}

/// Cumulative count of stored diagonal elements per row (`by_row`) or
/// per column, computed with a difference array in
/// O(n + ndiags) — diagonal `k` covers rows `d+lo[k]..d+hi[k]` and
/// columns `lo[k]..hi[k]`.
fn dia_coverage<T: Scalar>(n: usize, a: &Dia<T>, by_row: bool) -> Vec<usize> {
    let mut diff = vec![0i64; n + 1];
    for k in 0..a.diags.len() {
        let (start, end) = if by_row {
            (a.diags[k] + a.lo[k], a.diags[k] + a.hi[k])
        } else {
            (a.lo[k], a.hi[k])
        };
        diff[start as usize] += 1;
        diff[end as usize] -= 1;
    }
    let mut ptr = Vec::with_capacity(n + 1);
    ptr.push(0usize);
    let mut cover = 0i64;
    for d in diff.iter().take(n) {
        cover += d;
        ptr.push(ptr.last().unwrap() + cover as usize);
    }
    ptr
}

fn prefix(costs: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut ptr = vec![0usize];
    for c in costs {
        ptr.push(ptr.last().unwrap() + c);
    }
    ptr
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_formats::gen;

    #[test]
    fn ell_blocks_balance_fill_not_width() {
        // One full row of 50, the rest nearly empty: padded width is 50
        // everywhere, but fill-based cost isolates the heavy row.
        let mut t = bernoulli_formats::Triplets::new(40, 50);
        for c in 0..50 {
            t.push(0, c, 1.0);
        }
        for r in 1..40 {
            t.push(r, r % 50, 1.0);
        }
        t.normalize();
        let a = bernoulli_formats::Ell::from_triplets(&t);
        let b = ell_row_blocks(&a, 4);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 40);
        assert_eq!(b[1], 1, "heavy row gets its own block: {b:?}");
    }

    #[test]
    fn jad_blocks_cover_all_permuted_rows() {
        let a = bernoulli_formats::Jad::from_triplets(&gen::structurally_symmetric(30, 160, 9, 77));
        for nb in [1, 2, 3, 7, 16] {
            let b = jad_row_blocks(&a, nb);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), 30);
            assert!(b.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn dia_coverage_counts_stored_entries() {
        let a = bernoulli_formats::Dia::from_triplets(&gen::banded(25, 3, 4));
        let rows = dia_coverage(a.nrows, &a, true);
        let cols = dia_coverage(a.ncols, &a, false);
        // Total coverage equals stored entries either way.
        assert_eq!(*rows.last().unwrap(), a.values.len());
        assert_eq!(*cols.last().unwrap(), a.values.len());
        let b = dia_row_blocks(&a, 4);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 25);
    }

    #[test]
    fn empty_matrix_yields_no_blocks() {
        let t = bernoulli_formats::Triplets::<f64>::new(0, 0);
        let a = bernoulli_formats::Ell::from_triplets(&t);
        assert_eq!(ell_row_blocks(&a, 4), vec![0]);
    }
}
