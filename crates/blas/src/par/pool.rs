//! Worker pool — hoisted into the [`bernoulli_pool`] crate (S34) so the
//! synthesizer's parallel search and the generated kernels share one
//! process-wide set of worker threads. This module re-exports it
//! unchanged; every `blas::par::pool::Pool` call site and the
//! `BERNOULLI_THREADS` sizing contract behave exactly as before the
//! move (see `crates/pool` for the implementation and its tests).

pub use bernoulli_pool::{default_threads, Pool, THREADS_ENV};
