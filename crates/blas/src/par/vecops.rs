//! Parallel vector operations with deterministic block reduction.
//!
//! Element-wise updates (`par_axpy`) run on disjoint even blocks and
//! are bitwise equal to their sequential counterparts. Reductions
//! (`par_dot`, `par_nrm2`) accumulate one partial per block in the
//! sequential left-fold order, then combine the partials in ascending
//! block order — the result is a pure function of the input and
//! `nthreads` (and equals the sequential result exactly when
//! `nthreads == 1`).

use super::SlicePtr;
use bernoulli_formats::partition::split_even;
use bernoulli_formats::Scalar;
use bernoulli_pool::Pool;

/// Per-op call/element counters (`par.<op>.{calls,elems}`); compiled
/// out with tracing disabled.
macro_rules! vec_trace {
    ($op:literal, $elems:expr) => {
        bernoulli_trace::counter!(concat!("par.", $op, ".calls"));
        bernoulli_trace::counter!(concat!("par.", $op, ".elems"), $elems);
    };
}

/// `y += alpha·x` over disjoint even blocks; bitwise equal to
/// [`crate::handwritten::axpy`] at every thread count.
pub fn par_axpy<T: Scalar + Send + Sync>(alpha: T, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), y.len());
    vec_trace!("axpy", y.len());
    let bounds = split_even(y.len(), nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo, hi) = (bounds[chunk], bounds[chunk + 1]);
        // SAFETY: blocks are disjoint across chunks.
        let yb = unsafe { yp.range_mut(lo, hi) };
        for (yi, &xi) in yb.iter_mut().zip(&x[lo..hi]) {
            *yi += alpha * xi;
        }
    });
}

/// Dot product with per-block partials combined in ascending block
/// order.
pub fn par_dot<T: Scalar + Send + Sync>(x: &[T], y: &[T], nthreads: usize) -> T {
    assert_eq!(x.len(), y.len());
    vec_trace!("dot", x.len());
    block_reduce(x.len(), nthreads, &|lo, hi| {
        let mut acc = T::ZERO;
        for (&a, &b) in x[lo..hi].iter().zip(&y[lo..hi]) {
            acc += a * b;
        }
        acc
    })
}

/// Euclidean norm via [`par_dot`].
pub fn par_nrm2(x: &[f64], nthreads: usize) -> f64 {
    par_dot(x, x, nthreads).sqrt()
}

/// Sum of squared differences `Σ (b[i] − ax[i])²` — the residual norm
/// accumulation of the Jacobi sweep, block-reduced like [`par_dot`].
pub fn par_diff_norm_sq(b: &[f64], ax: &[f64], nthreads: usize) -> f64 {
    assert_eq!(b.len(), ax.len());
    vec_trace!("diff_norm_sq", b.len());
    block_reduce(b.len(), nthreads, &|lo, hi| {
        let mut acc = 0.0;
        for (bi, axi) in b[lo..hi].iter().zip(&ax[lo..hi]) {
            let r = bi - axi;
            acc += r * r;
        }
        acc
    })
}

/// `p = r + beta·p` element-wise over disjoint even blocks (the CG
/// direction update).
pub fn par_scal_add(beta: f64, p: &mut [f64], r: &[f64], nthreads: usize) {
    assert_eq!(p.len(), r.len());
    vec_trace!("scal_add", p.len());
    let bounds = split_even(p.len(), nthreads.max(1));
    let pp = SlicePtr::new(p);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo, hi) = (bounds[chunk], bounds[chunk + 1]);
        // SAFETY: blocks are disjoint across chunks.
        let pb = unsafe { pp.range_mut(lo, hi) };
        for (pi, &ri) in pb.iter_mut().zip(&r[lo..hi]) {
            *pi = ri + beta * *pi;
        }
    });
}

/// `x[i] += (b[i] − ax[i]) / diag[i]` over disjoint even blocks (the
/// Jacobi correction).
pub fn par_diag_correct(x: &mut [f64], b: &[f64], ax: &[f64], diag: &[f64], nthreads: usize) {
    assert_eq!(x.len(), b.len());
    assert_eq!(x.len(), ax.len());
    assert_eq!(x.len(), diag.len());
    vec_trace!("diag_correct", x.len());
    let bounds = split_even(x.len(), nthreads.max(1));
    let xp = SlicePtr::new(x);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo, hi) = (bounds[chunk], bounds[chunk + 1]);
        // SAFETY: blocks are disjoint across chunks.
        let xb = unsafe { xp.range_mut(lo, hi) };
        for (k, xi) in xb.iter_mut().enumerate() {
            let i = lo + k;
            *xi += (b[i] - ax[i]) / diag[i];
        }
    });
}

/// Runs `partial(lo, hi)` over even blocks of `0..n` and sums the
/// per-block results in ascending block order.
fn block_reduce<T: Scalar + Send + Sync>(
    n: usize,
    nthreads: usize,
    partial: &(dyn Fn(usize, usize) -> T + Sync),
) -> T {
    let bounds = split_even(n, nthreads.max(1));
    let nchunks = bounds.len() - 1;
    if nchunks <= 1 {
        return partial(0, n);
    }
    let mut parts = vec![T::ZERO; nchunks];
    let pp = SlicePtr::new(&mut parts);
    Pool::global().run(nchunks, &|chunk| {
        // SAFETY: one partial slot per chunk.
        unsafe { *pp.at_mut(chunk) = partial(bounds[chunk], bounds[chunk + 1]) };
    });
    let mut acc = T::ZERO;
    for p in parts {
        acc += p;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten as hw;
    use bernoulli_formats::gen;

    #[test]
    fn axpy_bitwise_equal() {
        let x = gen::dense_vector(1000, 3);
        let y0 = gen::dense_vector(1000, 4);
        let mut y_seq = y0.clone();
        hw::axpy(1.7, &x, &mut y_seq);
        for threads in [1, 2, 3, 7, 16] {
            let mut y_par = y0.clone();
            par_axpy(1.7, &x, &mut y_par, threads);
            assert_eq!(y_seq, y_par, "threads = {threads}");
        }
    }

    #[test]
    fn dot_deterministic_and_close() {
        let x = gen::dense_vector(1000, 5);
        let y = gen::dense_vector(1000, 6);
        let seq = hw::dot(&x, &y);
        assert_eq!(par_dot(&x, &y, 1), seq);
        for threads in [2, 3, 7, 16] {
            let a = par_dot(&x, &y, threads);
            let b = par_dot(&x, &y, threads);
            assert_eq!(a, b, "two runs, threads = {threads}");
            assert!((a - seq).abs() <= 1e-12 * (1.0 + seq.abs()));
        }
        assert_eq!(par_nrm2(&x, 4), par_nrm2(&x, 4));
    }

    #[test]
    fn fused_updates_match_scalar_loops() {
        let n = 513;
        let b = gen::dense_vector(n, 1);
        let ax = gen::dense_vector(n, 2);
        let diag: Vec<f64> = (0..n).map(|i| 2.0 + (i % 7) as f64).collect();
        let r = gen::dense_vector(n, 3);

        let mut p_seq = gen::dense_vector(n, 4);
        let mut p_par = p_seq.clone();
        for i in 0..n {
            p_seq[i] = r[i] + 0.9 * p_seq[i];
        }
        par_scal_add(0.9, &mut p_par, &r, 7);
        assert_eq!(p_seq, p_par);

        let mut x_seq = gen::dense_vector(n, 5);
        let mut x_par = x_seq.clone();
        for i in 0..n {
            x_seq[i] += (b[i] - ax[i]) / diag[i];
        }
        par_diag_correct(&mut x_par, &b, &ax, &diag, 7);
        assert_eq!(x_seq, x_par);

        let mut res = 0.0;
        for i in 0..n {
            let d = b[i] - ax[i];
            res += d * d;
        }
        assert!((par_diff_norm_sq(&b, &ax, 1) - res).abs() == 0.0);
        assert!((par_diff_norm_sq(&b, &ax, 7) - res).abs() <= 1e-12 * (1.0 + res));
    }

    #[test]
    fn empty_vectors() {
        let mut y: Vec<f64> = vec![];
        par_axpy(2.0, &[], &mut y, 4);
        assert_eq!(par_dot::<f64>(&[], &[], 4), 0.0);
    }
}
