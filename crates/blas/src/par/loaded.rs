//! Parallel dispatch of runtime-**loaded** kernels: the compiled-kernel
//! execution path meets the nnz-balanced parallel lane.
//!
//! A [`LoadedKernel`] whose plan is row-range splittable exports a
//! ranged `extern "C"` entry; these drivers cut the matrix into the
//! same nnz-balanced row blocks the hand-written parallel kernels use
//! and dispatch each block through that entry on the global [`Pool`].
//! Outputs are shared across chunks via [`RawOut`] — sound because the
//! ranged entry writes exactly the rows of its band.
//!
//! Determinism matches [`crate::par::mvm`]: one writer per output row
//! and the same per-row accumulation order as the sequential kernel,
//! so results are bitwise equal to a full-range `run` at every
//! `nthreads`.

use super::partition;
use bernoulli_formats::{Bsr, Csr, Ell, Vbr};
use bernoulli_pool::Pool;
use bernoulli_synth::{KernelArg, KernelCallError, LoadedKernel, RawOut};
use std::sync::Mutex;

/// Runs a row-ranged loaded kernel over nnz-balanced row `bounds`
/// (as produced by `partition_rows`/`ell_row_blocks`: `bounds[c]..
/// bounds[c+1]` is chunk `c`), building each chunk's operand list with
/// `make_args`. The first chunk error (if any) is returned.
///
/// `make_args` runs once per chunk on a pool worker; shared outputs
/// must be passed as [`KernelArg::OutShared`] so chunks do not alias
/// `&mut` slices.
pub fn par_run_rows<'a, F>(
    k: &LoadedKernel,
    params: &[i64],
    bounds: &[usize],
    make_args: &F,
) -> Result<(), KernelCallError>
where
    F: Fn() -> Vec<KernelArg<'a>> + Sync,
{
    if !k.supports_ranged() {
        return Err(KernelCallError::NoRangedEntry);
    }
    if bounds.len() < 2 {
        return Ok(());
    }
    let first_err: Mutex<Option<KernelCallError>> = Mutex::new(None);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo, hi) = (bounds[chunk], bounds[chunk + 1]);
        let mut args = make_args();
        if let Err(e) = k.run_range(params, &mut args, lo as i64, hi as i64) {
            if let Ok(mut slot) = first_err.lock() {
                slot.get_or_insert(e);
            }
        }
    });
    match first_err.into_inner() {
        Ok(e) => e.map_or(Ok(()), Err),
        Err(_) => Err(KernelCallError::Panicked),
    }
}

/// `y += A·x` through a loaded CSR MVM kernel over nnz-balanced row
/// blocks — the loaded-kernel analogue of [`super::par_mvm_csr`],
/// bitwise equal to a sequential `run` of the same kernel.
pub fn par_loaded_mvm_csr(
    k: &LoadedKernel,
    a: &Csr<f64>,
    x: &[f64],
    y: &mut [f64],
    nthreads: usize,
) -> Result<(), KernelCallError> {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    let bounds = a.partition_rows(nthreads.max(1));
    // SAFETY: each ranged call writes only rows lo..hi of y, and the
    // row blocks are disjoint across chunks.
    let yo = unsafe { RawOut::new(y.as_mut_ptr(), y.len()) };
    par_run_rows(k, &[a.nrows as i64, a.ncols as i64], &bounds, &|| {
        vec![
            KernelArg::Csr(a),
            KernelArg::In(x),
            KernelArg::OutShared(yo),
        ]
    })
}

/// `y += A·x` through a loaded ELL MVM kernel over nnz-balanced row
/// blocks — the loaded-kernel analogue of [`super::par_mvm_ell`].
pub fn par_loaded_mvm_ell(
    k: &LoadedKernel,
    a: &Ell<f64>,
    x: &[f64],
    y: &mut [f64],
    nthreads: usize,
) -> Result<(), KernelCallError> {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    let bounds = partition::ell_row_blocks(a, nthreads.max(1));
    // SAFETY: disjoint row blocks, as above.
    let yo = unsafe { RawOut::new(y.as_mut_ptr(), y.len()) };
    par_run_rows(k, &[a.nrows as i64, a.ncols as i64], &bounds, &|| {
        vec![
            KernelArg::Ell(a),
            KernelArg::In(x),
            KernelArg::OutShared(yo),
        ]
    })
}

/// `y += A·x` through a loaded BSR MVM kernel over cell-balanced,
/// block-aligned row blocks — the loaded-kernel analogue of
/// [`super::par_mvm_bsr`], bitwise equal to a sequential `run` of the
/// same kernel (the ranged body derives the block row from each logical
/// row, so block-aligned bands partition the block walk exactly).
pub fn par_loaded_mvm_bsr(
    k: &LoadedKernel,
    a: &Bsr<f64>,
    x: &[f64],
    y: &mut [f64],
    nthreads: usize,
) -> Result<(), KernelCallError> {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    let bounds = a.partition_rows(nthreads.max(1));
    // SAFETY: each ranged call writes only rows lo..hi of y, and the
    // row blocks are disjoint across chunks.
    let yo = unsafe { RawOut::new(y.as_mut_ptr(), y.len()) };
    par_run_rows(k, &[a.nrows as i64, a.ncols as i64], &bounds, &|| {
        vec![
            KernelArg::Bsr(a),
            KernelArg::In(x),
            KernelArg::OutShared(yo),
        ]
    })
}

/// `y += A·x` through a loaded VBR MVM kernel over cell-balanced,
/// strip-aligned row blocks — the loaded-kernel analogue of
/// [`super::par_mvm_vbr`].
pub fn par_loaded_mvm_vbr(
    k: &LoadedKernel,
    a: &Vbr<f64>,
    x: &[f64],
    y: &mut [f64],
    nthreads: usize,
) -> Result<(), KernelCallError> {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    let bounds = a.partition_rows(nthreads.max(1));
    // SAFETY: disjoint row blocks, as above.
    let yo = unsafe { RawOut::new(y.as_mut_ptr(), y.len()) };
    par_run_rows(k, &[a.nrows as i64, a.ncols as i64], &bounds, &|| {
        vec![
            KernelArg::Vbr(a),
            KernelArg::In(x),
            KernelArg::OutShared(yo),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_formats::{gen, SparseView, Triplets};
    use bernoulli_synth::{KernelStore, Session};

    fn try_load(a_view: bernoulli_formats::FormatView) -> Option<LoadedKernel> {
        if bernoulli_synth::rustc_info().is_err() {
            eprintln!("SKIP par loaded test: no rustc on host");
            return None;
        }
        let s = Session::new();
        let (p, mat) = crate::synth::spec_for("mvm");
        let bound = s.bind(&p, &[(mat, a_view)]).expect("binds");
        let k = s.compile(&bound).expect("compiles");
        let dir =
            std::env::temp_dir().join(format!("bernoulli-kc-parloaded-{}", std::process::id()));
        Some(k.load_in(&KernelStore::at(dir)).expect("loads"))
    }

    #[test]
    fn par_loaded_csr_matches_sequential_run() {
        let t = gen::banded(257, 3, 11);
        let a = Csr::from_triplets(&t);
        let Some(k) = try_load(a.format_view()) else {
            return;
        };
        let x: Vec<f64> = (0..a.ncols).map(|i| (i as f64).cos()).collect();
        let mut y_seq = vec![0.5; a.nrows];
        let y_par = y_seq.clone();
        let mut args = [
            KernelArg::Csr(&a),
            KernelArg::In(&x),
            KernelArg::Out(&mut y_seq),
        ];
        k.run(&[a.nrows as i64, a.ncols as i64], &mut args)
            .expect("sequential run");
        for threads in [1, 2, 3, 8] {
            let mut y = y_par.clone();
            par_loaded_mvm_csr(&k, &a, &x, &mut y, threads).expect("parallel run");
            assert_eq!(y_seq, y, "threads = {threads}");
        }
    }

    #[test]
    fn par_loaded_blocked_match_sequential_run() {
        let t = gen::fem_blocked(192, 2, 2, 0.85, 29);
        let x = gen::dense_vector(192, 4);

        let a = Bsr::from_triplets(&t, 2, 2);
        let Some(k) = try_load(a.format_view()) else {
            return;
        };
        let mut y_seq = vec![0.25; a.nrows];
        let mut args = [
            KernelArg::Bsr(&a),
            KernelArg::In(&x),
            KernelArg::Out(&mut y_seq),
        ];
        k.run(&[a.nrows as i64, a.ncols as i64], &mut args)
            .expect("sequential run");
        for threads in [1, 2, 8] {
            let mut y = vec![0.25; a.nrows];
            par_loaded_mvm_bsr(&k, &a, &x, &mut y, threads).expect("parallel run");
            assert_eq!(y_seq, y, "bsr threads = {threads}");
        }

        let (rp, cp) = bernoulli_formats::discover_strips(&t);
        let v = Vbr::from_triplets(&t, &rp, &cp);
        let Some(k) = try_load(v.format_view()) else {
            return;
        };
        let mut y_seq = vec![0.25; v.nrows];
        let mut args = [
            KernelArg::Vbr(&v),
            KernelArg::In(&x),
            KernelArg::Out(&mut y_seq),
        ];
        k.run(&[v.nrows as i64, v.ncols as i64], &mut args)
            .expect("sequential run");
        for threads in [1, 2, 8] {
            let mut y = vec![0.25; v.nrows];
            par_loaded_mvm_vbr(&k, &v, &x, &mut y, threads).expect("parallel run");
            assert_eq!(y_seq, y, "vbr threads = {threads}");
        }
    }

    #[test]
    fn par_loaded_ell_matches_sequential_run() {
        let t = Triplets::from_entries(
            64,
            64,
            &(0..64)
                .flat_map(|i| [(i, i, 1.0 + i as f64), (i, (i * 7 + 1) % 64, -0.5)])
                .collect::<Vec<_>>(),
        );
        let a = Ell::from_triplets(&t);
        let Some(k) = try_load(a.format_view()) else {
            return;
        };
        let x: Vec<f64> = (0..a.ncols).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut y_seq = vec![0.0; a.nrows];
        let mut args = [
            KernelArg::Ell(&a),
            KernelArg::In(&x),
            KernelArg::Out(&mut y_seq),
        ];
        k.run(&[a.nrows as i64, a.ncols as i64], &mut args)
            .expect("sequential run");
        for threads in [1, 4] {
            let mut y = vec![0.0; a.nrows];
            par_loaded_mvm_ell(&k, &a, &x, &mut y, threads).expect("parallel run");
            assert_eq!(y_seq, y, "threads = {threads}");
        }
    }
}
