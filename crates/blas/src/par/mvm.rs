//! Parallel `y += A·x` and `y += Aᵀ·x` for every stored format.
//!
//! `nthreads` sets the partition granularity (number of chunks); the
//! global [`Pool`] supplies however many lanes it has, stealing chunks
//! dynamically. Results depend only on the inputs and `nthreads`, never
//! on the pool size or scheduling (see the module docs of
//! [`crate::par`] for the bitwise-vs-deterministic taxonomy).
//!
//! Gather-shaped traversals run directly on disjoint output blocks with
//! the same per-element accumulation order as the sequential kernels.
//! Scatter-shaped traversals (CSC MVM, CSR/ELL/JAD transpose MVM) give
//! each chunk a private output buffer and reduce the buffers into `y`
//! in fixed chunk order — the reduction itself runs parallel over
//! disjoint ranges of `y`.

#![allow(clippy::needless_range_loop)] // indexed loops mirror the sequential kernels

use super::{partition, SlicePtr};
use bernoulli_formats::partition::split_even;
use bernoulli_formats::{Bsr, Csc, Csr, Dia, Ell, Jad, Scalar, Vbr};
use bernoulli_pool::Pool;

/// Per-kernel call/nnz/flop counters (`par.<kernel>.{calls,nnz,flops}`);
/// one multiply-add per stored entry, so flops = 2·nnz. Compiled out
/// with tracing disabled, like every `bernoulli_trace` macro.
macro_rules! mvm_trace {
    ($kernel:literal, $nnz:expr) => {
        if bernoulli_trace::ENABLED {
            let nnz = $nnz;
            bernoulli_trace::counter!(concat!("par.", $kernel, ".calls"));
            bernoulli_trace::counter!(concat!("par.", $kernel, ".nnz"), nnz);
            bernoulli_trace::counter!(concat!("par.", $kernel, ".flops"), 2 * nnz);
        }
    };
}

/// `y[i] += vals[i] * x[i]` over three equal-length slices.
///
/// The DIA kernels stream whole diagonal segments through this; taking
/// the slices as function parameters restores the no-alias guarantees
/// that the pool closure's raw-pointer-derived output block loses, so
/// the loop vectorizes like its sequential counterpart.
fn fma_stream<T: Scalar>(y: &mut [T], vals: &[T], x: &[T]) {
    debug_assert!(y.len() == vals.len() && y.len() == x.len());
    for ((yi, &v), &xi) in y.iter_mut().zip(vals).zip(x) {
        *yi += v * xi;
    }
}

/// `y += A·x` over nnz-balanced row blocks (CSR).
///
/// Bitwise equal to [`crate::handwritten::mvm_csr`] at every
/// `nthreads`: one writer per row, per-row accumulator, identical
/// accumulation order.
pub fn par_mvm_csr<T: Scalar + Send + Sync>(a: &Csr<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    mvm_trace!("mvm_csr", a.values.len());
    let bounds = a.partition_rows(nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo, hi) = (bounds[chunk], bounds[chunk + 1]);
        // SAFETY: row blocks are disjoint across chunks.
        let yb = unsafe { yp.range_mut(lo, hi) };
        for i in lo..hi {
            let mut acc = T::ZERO;
            for p in a.rowptr[i]..a.rowptr[i + 1] {
                acc += a.values[p] * x[a.colind[p]];
            }
            yb[i - lo] += acc;
        }
    });
}

/// `y += Aᵀ·x` over nnz-balanced column blocks (CSC): the gather dual
/// of [`par_mvm_csr`]; bitwise equal to
/// [`crate::handwritten::mvmt_csc`].
pub fn par_mvmt_csc<T: Scalar + Send + Sync>(a: &Csc<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    mvm_trace!("mvmt_csc", a.values.len());
    let bounds = a.partition_cols(nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo, hi) = (bounds[chunk], bounds[chunk + 1]);
        // SAFETY: column blocks are disjoint across chunks.
        let yb = unsafe { yp.range_mut(lo, hi) };
        for j in lo..hi {
            let mut acc = T::ZERO;
            for p in a.colptr[j]..a.colptr[j + 1] {
                acc += a.values[p] * x[a.rowind[p]];
            }
            yb[j - lo] += acc;
        }
    });
}

/// `y += A·x` over fill-balanced row blocks (ELL); bitwise equal to
/// [`crate::handwritten::mvm_ell`].
pub fn par_mvm_ell<T: Scalar + Send + Sync>(a: &Ell<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    mvm_trace!("mvm_ell", a.rowlen.iter().sum::<usize>());
    let bounds = partition::ell_row_blocks(a, nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo, hi) = (bounds[chunk], bounds[chunk + 1]);
        // SAFETY: row blocks are disjoint across chunks.
        let yb = unsafe { yp.range_mut(lo, hi) };
        for i in lo..hi {
            let mut acc = T::ZERO;
            let base = i * a.width;
            for s in 0..a.rowlen[i] {
                acc += a.values[base + s] * x[a.colind[base + s] as usize];
            }
            yb[i - lo] += acc;
        }
    });
}

/// `y += A·x` over fill-balanced *permuted*-row blocks (JAD), through
/// the hierarchical perspective (`rr -> d`) rather than the sequential
/// kernel's diagonal-major scatter.
///
/// Each output element `y[iperm[rr]]` has exactly one writer and
/// accumulates its diagonals in the same (ascending `d`) order as
/// [`crate::handwritten::mvm_jad`], so the result is bitwise equal to
/// the sequential kernel whenever `y` starts zeroed, and deterministic
/// always.
pub fn par_mvm_jad<T: Scalar + Send + Sync>(a: &Jad<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    mvm_trace!("mvm_jad", a.values.len());
    let bounds = partition::jad_row_blocks(a, nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        for rr in bounds[chunk]..bounds[chunk + 1] {
            let mut acc = T::ZERO;
            for d in 0..a.rowlen[rr] {
                let jj = a.dptr[d] + rr;
                acc += a.values[jj] * x[a.colind[jj]];
            }
            // SAFETY: `iperm` is a permutation and the `rr` blocks are
            // disjoint, so each `y` element has exactly one writer.
            unsafe { *yp.at_mut(a.iperm[rr]) += acc };
        }
    });
}

/// `y += A·x` over coverage-balanced row blocks (DIA): each chunk walks
/// every stored diagonal restricted to its row range; per output
/// element the diagonals apply in ascending-`k` order, exactly the
/// sequential order, so the result is bitwise equal to
/// [`crate::handwritten::mvm_dia`].
pub fn par_mvm_dia<T: Scalar + Send + Sync>(a: &Dia<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    mvm_trace!("mvm_dia", a.values.len());
    let bounds = partition::dia_row_blocks(a, nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo_r, hi_r) = (bounds[chunk] as i64, bounds[chunk + 1] as i64);
        // SAFETY: row blocks are disjoint across chunks.
        let yb = unsafe { yp.range_mut(lo_r as usize, hi_r as usize) };
        for k in 0..a.diags.len() {
            let d = a.diags[k];
            let base = a.ptr[k];
            let lo = a.lo[k];
            // Diagonal k covers rows d + lo .. d + hi, i.e. column
            // offsets lo .. hi; restrict to this chunk's rows.
            let o0 = lo.max(lo_r - d);
            let o1 = a.hi[k].min(hi_r - d);
            if o1 <= o0 {
                continue;
            }
            let vals = &a.values[base + (o0 - lo) as usize..base + (o1 - lo) as usize];
            fma_stream(
                &mut yb[(d + o0 - lo_r) as usize..(d + o1 - lo_r) as usize],
                vals,
                &x[o0 as usize..o1 as usize],
            );
        }
    });
}

/// `y += Aᵀ·x` over coverage-balanced *column* blocks (DIA): the
/// transpose swaps the roles of `r = d + o` and `c = o`, turning the
/// scatter into a gather; bitwise equal to
/// [`crate::handwritten::mvmt_dia`].
pub fn par_mvmt_dia<T: Scalar + Send + Sync>(a: &Dia<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    mvm_trace!("mvmt_dia", a.values.len());
    let bounds = partition::dia_col_blocks(a, nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo_c, hi_c) = (bounds[chunk] as i64, bounds[chunk + 1] as i64);
        // SAFETY: column blocks are disjoint across chunks.
        let yb = unsafe { yp.range_mut(lo_c as usize, hi_c as usize) };
        for k in 0..a.diags.len() {
            let d = a.diags[k];
            let base = a.ptr[k];
            let lo = a.lo[k];
            let o0 = lo.max(lo_c);
            let o1 = a.hi[k].min(hi_c);
            if o1 <= o0 {
                continue;
            }
            let vals = &a.values[base + (o0 - lo) as usize..base + (o1 - lo) as usize];
            fma_stream(
                &mut yb[(o0 - lo_c) as usize..(o1 - lo_c) as usize],
                vals,
                &x[(d + o0) as usize..(d + o1) as usize],
            );
        }
    });
}

/// `y += A·x` for CSC — a scatter along columns, parallelized with
/// per-chunk partial outputs reduced in fixed chunk order
/// (deterministic; equal to [`crate::handwritten::mvm_csc`] up to
/// floating-point reassociation).
pub fn par_mvm_csc<T: Scalar + Send + Sync>(a: &Csc<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    mvm_trace!("mvm_csc", a.values.len());
    let bounds = a.partition_cols(nthreads.max(1));
    scatter_reduce(&bounds, a.nrows, y, nthreads, &|chunk, buf| {
        for j in bounds[chunk]..bounds[chunk + 1] {
            let xj = x[j];
            for p in a.colptr[j]..a.colptr[j + 1] {
                buf[a.rowind[p]] += a.values[p] * xj;
            }
        }
    });
}

/// `y += Aᵀ·x` for CSR — a scatter along rows, parallelized with
/// per-chunk partial outputs reduced in fixed chunk order.
pub fn par_mvmt_csr<T: Scalar + Send + Sync>(a: &Csr<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    mvm_trace!("mvmt_csr", a.values.len());
    let bounds = a.partition_rows(nthreads.max(1));
    scatter_reduce(&bounds, a.ncols, y, nthreads, &|chunk, buf| {
        for i in bounds[chunk]..bounds[chunk + 1] {
            let xi = x[i];
            for p in a.rowptr[i]..a.rowptr[i + 1] {
                buf[a.colind[p]] += a.values[p] * xi;
            }
        }
    });
}

/// `y += Aᵀ·x` for ELL — a scatter along rows, parallelized with
/// per-chunk partial outputs reduced in fixed chunk order.
pub fn par_mvmt_ell<T: Scalar + Send + Sync>(a: &Ell<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    mvm_trace!("mvmt_ell", a.rowlen.iter().sum::<usize>());
    let bounds = partition::ell_row_blocks(a, nthreads.max(1));
    scatter_reduce(&bounds, a.ncols, y, nthreads, &|chunk, buf| {
        for i in bounds[chunk]..bounds[chunk + 1] {
            let xi = x[i];
            let base = i * a.width;
            for s in 0..a.rowlen[i] {
                buf[a.colind[base + s] as usize] += a.values[base + s] * xi;
            }
        }
    });
}

/// `y += Aᵀ·x` for JAD — a scatter through the hierarchical
/// perspective over permuted-row blocks, with per-chunk partial outputs
/// reduced in fixed chunk order.
pub fn par_mvmt_jad<T: Scalar + Send + Sync>(a: &Jad<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    mvm_trace!("mvmt_jad", a.values.len());
    let bounds = partition::jad_row_blocks(a, nthreads.max(1));
    scatter_reduce(&bounds, a.ncols, y, nthreads, &|chunk, buf| {
        for rr in bounds[chunk]..bounds[chunk + 1] {
            let xi = x[a.iperm[rr]];
            for d in 0..a.rowlen[rr] {
                let jj = a.dptr[d] + rr;
                buf[a.colind[jj]] += a.values[jj] * xi;
            }
        }
    });
}

/// `y += A·x` over cell-balanced, block-aligned row blocks (BSR).
///
/// The chunk bounds from [`Bsr::partition_rows`] are multiples of the
/// block height, so each chunk runs the register-tiled block-row kernel
/// ([`crate::handwritten::mvm_bsr`]) on whole block rows; per-row
/// accumulation order is chunk-independent, so the result is bitwise
/// equal to the sequential kernel at every `nthreads`.
pub fn par_mvm_bsr<T: Scalar + Send + Sync>(a: &Bsr<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    mvm_trace!("mvm_bsr", a.values.len());
    let bounds = a.partition_rows(nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo, hi) = (bounds[chunk], bounds[chunk + 1]);
        // SAFETY: row blocks are disjoint across chunks.
        let yb = unsafe { yp.range_mut(lo, hi) };
        crate::handwritten::bsr::mvm_bsr_rows(a, x, yb, lo / a.r, hi / a.r);
    });
}

/// `y += A·x` over cell-balanced, strip-aligned row blocks (VBR);
/// bitwise equal to [`crate::handwritten::mvm_vbr`] at every
/// `nthreads` (one writer per row, chunk-independent accumulation
/// order).
pub fn par_mvm_vbr<T: Scalar + Send + Sync>(a: &Vbr<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    mvm_trace!("mvm_vbr", a.val.len());
    let bounds = a.partition_rows(nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(bounds.len() - 1, &|chunk| {
        let (lo, hi) = (bounds[chunk], bounds[chunk + 1]);
        // SAFETY: row blocks are disjoint across chunks.
        let yb = unsafe { yp.range_mut(lo, hi) };
        crate::handwritten::vbr::mvm_vbr_strips(a, x, yb, vbr_strip(a, lo), vbr_strip(a, hi));
    });
}

/// Strip index of a strip-aligned logical-row bound.
fn vbr_strip<T: Scalar>(a: &Vbr<T>, row: usize) -> usize {
    if row == a.nrows {
        a.rpntr.len() - 1
    } else {
        a.rowblk[row]
    }
}

/// `y += Aᵀ·x` for BSR — a scatter along block rows, parallelized with
/// per-chunk partial outputs reduced in fixed chunk order.
pub fn par_mvmt_bsr<T: Scalar + Send + Sync>(a: &Bsr<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    mvm_trace!("mvmt_bsr", a.values.len());
    let bounds = a.partition_rows(nthreads.max(1));
    scatter_reduce(&bounds, a.ncols, y, nthreads, &|chunk, buf| {
        crate::handwritten::bsr::mvmt_bsr_rows(
            a,
            x,
            buf,
            bounds[chunk] / a.r,
            bounds[chunk + 1] / a.r,
        );
    });
}

/// `y += Aᵀ·x` for VBR — a scatter along block strips, parallelized
/// with per-chunk partial outputs reduced in fixed chunk order.
pub fn par_mvmt_vbr<T: Scalar + Send + Sync>(a: &Vbr<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.nrows, "x length");
    assert_eq!(y.len(), a.ncols, "y length");
    mvm_trace!("mvmt_vbr", a.val.len());
    let bounds = a.partition_rows(nthreads.max(1));
    scatter_reduce(&bounds, a.ncols, y, nthreads, &|chunk, buf| {
        crate::handwritten::vbr::mvmt_vbr_strips(
            a,
            x,
            buf,
            vbr_strip(a, bounds[chunk]),
            vbr_strip(a, bounds[chunk + 1]),
        );
    });
}

/// Runs a scatter kernel with one private zeroed buffer per chunk, then
/// reduces the buffers into `y` in ascending chunk order (the reduction
/// is itself parallel over disjoint `y` ranges, preserving that order
/// per element). A single chunk scatters straight into `y` — the same
/// operation sequence the sequential kernels perform, so `nthreads <= 1`
/// is bitwise-identical to sequential with zero extra allocation.
fn scatter_reduce<T: Scalar + Send + Sync>(
    bounds: &[usize],
    out_len: usize,
    y: &mut [T],
    nthreads: usize,
    body: &(dyn Fn(usize, &mut [T]) + Sync),
) {
    let nchunks = bounds.len() - 1;
    if nchunks == 0 {
        return;
    }
    if nchunks == 1 {
        body(0, y);
        return;
    }
    let mut partials = vec![T::ZERO; nchunks * out_len];
    let pp = SlicePtr::new(&mut partials);
    Pool::global().run(nchunks, &|chunk| {
        // SAFETY: each chunk owns its own stripe of `partials`.
        let buf = unsafe { pp.range_mut(chunk * out_len, (chunk + 1) * out_len) };
        body(chunk, buf);
    });
    let red = split_even(out_len, nthreads.max(1));
    let yp = SlicePtr::new(y);
    Pool::global().run(red.len() - 1, &|r| {
        let (lo, hi) = (red[r], red[r + 1]);
        // SAFETY: reduction ranges are disjoint across chunks, and
        // `partials` is only read here.
        let yb = unsafe { yp.range_mut(lo, hi) };
        for chunk in 0..nchunks {
            let base = chunk * out_len;
            for i in lo..hi {
                yb[i - lo] += partials[base + i];
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten as hw;
    use bernoulli_formats::{gen, Triplets};

    const THREADS: [usize; 5] = [1, 2, 3, 7, 16];

    fn workload() -> (Triplets<f64>, Vec<f64>) {
        (
            gen::structurally_symmetric(500, 3000, 40, 3),
            gen::dense_vector(500, 5),
        )
    }

    #[test]
    fn matches_sequential_bitwise() {
        let (t, x) = workload();
        let a = Csr::from_triplets(&t);
        let mut y_seq = vec![0.0; 500];
        hw::mvm_csr(&a, &x, &mut y_seq);
        for threads in THREADS {
            let mut y_par = vec![0.0; 500];
            par_mvm_csr(&a, &x, &mut y_par, threads);
            assert_eq!(y_seq, y_par, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let t = gen::tridiagonal(3);
        let a = Csr::from_triplets(&t);
        let x = vec![1.0, 0.0, 1.0];
        let mut y = vec![0.0; 3];
        par_mvm_csr(&a, &x, &mut y, 64);
        let mut y_seq = vec![0.0; 3];
        hw::mvm_csr(&a, &x, &mut y_seq);
        assert_eq!(y, y_seq);
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::<f64>::from_triplets(&Triplets::new(0, 0));
        let mut y: Vec<f64> = vec![];
        par_mvm_csr(&a, &[], &mut y, 4);
        assert!(y.is_empty());
    }

    #[test]
    fn gather_kernels_bitwise_equal_all_formats() {
        let (t, x) = workload();
        for threads in THREADS {
            let ell = Ell::from_triplets(&t);
            let mut y_seq = vec![0.25; 500];
            let mut y_par = y_seq.clone();
            hw::mvm_ell(&ell, &x, &mut y_seq);
            par_mvm_ell(&ell, &x, &mut y_par, threads);
            assert_eq!(y_seq, y_par, "ell mvm, threads = {threads}");

            let dia = Dia::from_triplets(&gen::banded(300, 5, 9));
            let xb = gen::dense_vector(300, 2);
            let mut y_seq = vec![0.25; 300];
            let mut y_par = y_seq.clone();
            hw::mvm_dia(&dia, &xb, &mut y_seq);
            par_mvm_dia(&dia, &xb, &mut y_par, threads);
            assert_eq!(y_seq, y_par, "dia mvm, threads = {threads}");

            let mut y_seq = vec![0.25; 300];
            let mut y_par = y_seq.clone();
            hw::mvmt_dia(&dia, &xb, &mut y_seq);
            par_mvmt_dia(&dia, &xb, &mut y_par, threads);
            assert_eq!(y_seq, y_par, "dia mvmt, threads = {threads}");

            let csc = Csc::from_triplets(&t);
            let mut y_seq = vec![0.25; 500];
            let mut y_par = y_seq.clone();
            hw::mvmt_csc(&csc, &x, &mut y_seq);
            par_mvmt_csc(&csc, &x, &mut y_par, threads);
            assert_eq!(y_seq, y_par, "csc mvmt, threads = {threads}");

            let jad = Jad::from_triplets(&t);
            let mut y_seq = vec![0.0; 500];
            let mut y_par = vec![0.0; 500];
            hw::mvm_jad(&jad, &x, &mut y_seq);
            par_mvm_jad(&jad, &x, &mut y_par, threads);
            assert_eq!(y_seq, y_par, "jad mvm (zeroed y), threads = {threads}");
        }
    }

    #[test]
    fn blocked_kernels_bitwise_equal_pools_1_2_8() {
        use bernoulli_formats::{discover_strips, Bsr, Vbr};
        // Pool sizes from the blocked-tier acceptance criteria; partial
        // fill makes the block rows genuinely unbalanced.
        let t = gen::fem_blocked(240, 4, 3, 0.7, 41);
        let x = gen::dense_vector(240, 6);
        let bsr = Bsr::from_triplets(&t, 4, 4);
        let (rp, cp) = discover_strips(&t);
        let vbr = Vbr::from_triplets(&t, &rp, &cp);

        let mut y_seq = vec![0.125; 240];
        hw::mvm_bsr(&bsr, &x, &mut y_seq);
        let mut z_seq = vec![0.125; 240];
        hw::mvm_vbr(&vbr, &x, &mut z_seq);
        for threads in [1usize, 2, 8] {
            let mut y_par = vec![0.125; 240];
            par_mvm_bsr(&bsr, &x, &mut y_par, threads);
            assert_eq!(y_seq, y_par, "bsr mvm, threads = {threads}");

            let mut z_par = vec![0.125; 240];
            par_mvm_vbr(&vbr, &x, &mut z_par, threads);
            assert_eq!(z_seq, z_par, "vbr mvm, threads = {threads}");
        }
    }

    #[test]
    fn blocked_transpose_matches_sequential_closely() {
        use bernoulli_formats::{discover_strips, Bsr, Vbr};
        let t = gen::fem_blocked(120, 3, 2, 0.8, 43);
        let x = gen::dense_vector(120, 9);
        let bsr = Bsr::from_triplets(&t, 3, 3);
        let (rp, cp) = discover_strips(&t);
        let vbr = Vbr::from_triplets(&t, &rp, &cp);
        let close = |a: &[f64], b: &[f64], what: &str| {
            for (i, (u, v)) in a.iter().zip(b).enumerate() {
                assert!(
                    (u - v).abs() <= 1e-12 * (1.0 + u.abs().max(v.abs())),
                    "{what}[{i}]: {u} vs {v}"
                );
            }
        };
        for threads in [1usize, 2, 8] {
            let mut y_seq = vec![0.0; 120];
            hw::mvmt_bsr(&bsr, &x, &mut y_seq);
            let mut y_par = vec![0.0; 120];
            par_mvmt_bsr(&bsr, &x, &mut y_par, threads);
            close(&y_seq, &y_par, "bsr mvmt");
            if threads == 1 {
                assert_eq!(y_seq, y_par, "single chunk is bitwise sequential");
            }

            let mut y_seq = vec![0.0; 120];
            hw::mvmt_vbr(&vbr, &x, &mut y_seq);
            let mut y_par = vec![0.0; 120];
            par_mvmt_vbr(&vbr, &x, &mut y_par, threads);
            close(&y_seq, &y_par, "vbr mvmt");
        }
    }

    #[test]
    fn scatter_kernels_match_sequential_closely() {
        let (t, x) = workload();
        let csr = Csr::from_triplets(&t);
        let csc = Csc::from_triplets(&t);
        let ell = Ell::from_triplets(&t);
        let jad = Jad::from_triplets(&t);
        let close = |a: &[f64], b: &[f64], what: &str| {
            for (i, (u, v)) in a.iter().zip(b).enumerate() {
                assert!(
                    (u - v).abs() <= 1e-12 * (1.0 + u.abs().max(v.abs())),
                    "{what}[{i}]: {u} vs {v}"
                );
            }
        };
        for threads in THREADS {
            let mut y_seq = vec![0.0; 500];
            hw::mvm_csc(&csc, &x, &mut y_seq);
            let mut y_par = vec![0.0; 500];
            par_mvm_csc(&csc, &x, &mut y_par, threads);
            close(&y_seq, &y_par, "csc mvm");

            let mut y_seq = vec![0.0; 500];
            hw::mvmt_csr(&csr, &x, &mut y_seq);
            let mut y_par = vec![0.0; 500];
            par_mvmt_csr(&csr, &x, &mut y_par, threads);
            close(&y_seq, &y_par, "csr mvmt");

            let mut y_seq = vec![0.0; 500];
            hw::mvmt_ell(&ell, &x, &mut y_seq);
            let mut y_par = vec![0.0; 500];
            par_mvmt_ell(&ell, &x, &mut y_par, threads);
            close(&y_seq, &y_par, "ell mvmt");

            let mut y_seq = vec![0.0; 500];
            hw::mvmt_jad(&jad, &x, &mut y_seq);
            let mut y_par = vec![0.0; 500];
            par_mvmt_jad(&jad, &x, &mut y_par, threads);
            close(&y_seq, &y_par, "jad mvmt");
        }
    }

    #[test]
    fn single_chunk_scatter_is_bitwise_sequential() {
        let (t, x) = workload();
        let csc = Csc::from_triplets(&t);
        let mut y_seq = vec![0.5; 500];
        let mut y_par = y_seq.clone();
        hw::mvm_csc(&csc, &x, &mut y_seq);
        par_mvm_csc(&csc, &x, &mut y_par, 1);
        assert_eq!(y_seq, y_par);
    }

    #[test]
    fn rectangular_shapes() {
        let t = gen::random_sparse(37, 61, 300, 8);
        let x_c = gen::dense_vector(61, 1);
        let x_r = gen::dense_vector(37, 2);
        let csr = Csr::from_triplets(&t);
        let csc = Csc::from_triplets(&t);
        for threads in THREADS {
            let mut y1 = vec![0.0; 37];
            par_mvm_csr(&csr, &x_c, &mut y1, threads);
            let mut y2 = vec![0.0; 37];
            par_mvm_csc(&csc, &x_c, &mut y2, threads);
            for (u, v) in y1.iter().zip(&y2) {
                assert!((u - v).abs() < 1e-12);
            }
            let mut z1 = vec![0.0; 61];
            par_mvmt_csr(&csr, &x_r, &mut z1, threads);
            let mut z2 = vec![0.0; 61];
            par_mvmt_csc(&csc, &x_r, &mut z2, threads);
            for (u, v) in z1.iter().zip(&z2) {
                assert!((u - v).abs() < 1e-12);
            }
        }
    }
}
