//! Level-scheduled (wavefront) parallel lower triangular solve.
//!
//! A triangular solve has loop-carried dependences — row `i` needs
//! `b[j]` for every stored `j < i` — so it cannot be row-blocked like
//! MVM. But the dependence *graph* is usually shallow: assigning each
//! row the level `1 + max(level of its dependences)` groups rows into
//! wavefronts that are mutually independent within a level. The solve
//! then sweeps levels sequentially and rows within a level in parallel.
//! Computing the schedule is O(nnz) and depends only on the pattern, so
//! it can be built once and reused across solves with the same matrix
//! (the usual case in preconditioned iterative methods).
//!
//! Each row performs exactly the operation sequence of the sequential
//! [`crate::handwritten::ts_csr`], so the result is bitwise equal to it
//! at every thread count.

use super::SlicePtr;
use bernoulli_formats::partition::split_ptr_by_cost;
use bernoulli_formats::{Csr, Scalar};
use bernoulli_pool::Pool;

/// A wavefront schedule for a lower triangular CSR pattern: rows
/// grouped by dependence depth.
#[derive(Clone, Debug)]
pub struct LevelSchedule {
    /// Rows sorted by (level, row index); within a level rows keep
    /// their natural order.
    rows: Vec<usize>,
    /// `lptr[l]..lptr[l+1]` indexes the rows of level `l` in `rows`
    /// (`len == nlevels + 1`).
    lptr: Vec<usize>,
}

impl LevelSchedule {
    /// Builds the schedule from the strictly-lower part of `l`'s
    /// pattern: `level[i] = 1 + max(level[j])` over stored `j < i`
    /// (0 for rows with no sub-diagonal entries).
    pub fn build<T: Scalar>(l: &Csr<T>) -> LevelSchedule {
        let n = l.nrows;
        let mut level = vec![0usize; n];
        let mut nlevels = 0usize;
        for i in 0..n {
            let mut lv = 0usize;
            for p in l.rowptr[i]..l.rowptr[i + 1] {
                let c = l.colind[p];
                if c < i {
                    lv = lv.max(level[c] + 1);
                }
            }
            level[i] = lv;
            nlevels = nlevels.max(lv + 1);
        }
        bernoulli_trace::counter!("par.ts.schedules");
        bernoulli_trace::counter!("par.ts.levels", nlevels);
        bernoulli_trace::counter!("par.ts.rows", n);
        if n == 0 {
            return LevelSchedule {
                rows: vec![],
                lptr: vec![0],
            };
        }
        // Counting sort by level; stable, so rows stay ascending within
        // each level.
        let mut lptr = vec![0usize; nlevels + 1];
        for &lv in &level {
            lptr[lv + 1] += 1;
        }
        for l in 0..nlevels {
            lptr[l + 1] += lptr[l];
        }
        let mut rows = vec![0usize; n];
        let mut fill = lptr.clone();
        for (i, &lv) in level.iter().enumerate() {
            rows[fill[lv]] = i;
            fill[lv] += 1;
        }
        LevelSchedule { rows, lptr }
    }

    /// Number of wavefronts (0 for an empty matrix).
    pub fn nlevels(&self) -> usize {
        self.lptr.len() - 1
    }

    /// The rows of level `l`, in ascending row order.
    pub fn level_rows(&self, l: usize) -> &[usize] {
        &self.rows[self.lptr[l]..self.lptr[l + 1]]
    }

    /// Average rows per level — the available parallelism.
    pub fn avg_width(&self) -> f64 {
        if self.nlevels() == 0 {
            return 0.0;
        }
        self.rows.len() as f64 / self.nlevels() as f64
    }
}

/// Solves `L·b' = b` in place with a freshly built [`LevelSchedule`];
/// `l` must store its full diagonal and only lower-triangle entries.
pub fn par_ts_csr<T: Scalar + Send + Sync>(l: &Csr<T>, b: &mut [T], nthreads: usize) {
    let sched = LevelSchedule::build(l);
    par_ts_csr_scheduled(l, &sched, b, nthreads);
}

/// Solves `L·b' = b` in place, reusing a prebuilt schedule (amortizes
/// the O(nnz) analysis over repeated solves).
pub fn par_ts_csr_scheduled<T: Scalar + Send + Sync>(
    l: &Csr<T>,
    sched: &LevelSchedule,
    b: &mut [T],
    nthreads: usize,
) {
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), l.nrows, "b length");
    bernoulli_trace::counter!("par.ts.solves");
    bernoulli_trace::counter!("par.ts.nnz", l.values.len());
    bernoulli_trace::counter!("par.ts.solve_levels", sched.nlevels());
    bernoulli_trace::span!("par.ts.solve");
    let nthreads = nthreads.max(1);
    let bp = SlicePtr::new(b);
    for lv in 0..sched.nlevels() {
        let rows = sched.level_rows(lv);
        // nnz-balance the level's rows.
        let mut cost = Vec::with_capacity(rows.len() + 1);
        cost.push(0usize);
        for &i in rows {
            cost.push(cost.last().unwrap() + (l.rowptr[i + 1] - l.rowptr[i]));
        }
        let bounds = split_ptr_by_cost(&cost, nthreads);
        // Each `Pool::run` is a full barrier: writes from level `lv`
        // happen-before every read in level `lv + 1`.
        Pool::global().run(bounds.len() - 1, &|chunk| {
            for &i in &rows[bounds[chunk]..bounds[chunk + 1]] {
                // SAFETY: within a level each row is written by exactly
                // one chunk, and reads touch only rows of strictly
                // lower levels, finished behind the previous barrier.
                unsafe {
                    let mut acc = bp.read(i);
                    let mut diag = T::ZERO;
                    for p in l.rowptr[i]..l.rowptr[i + 1] {
                        let c = l.colind[p];
                        if c < i {
                            acc -= l.values[p] * bp.read(c);
                        } else if c == i {
                            diag = l.values[p];
                        }
                    }
                    *bp.at_mut(i) = acc / diag;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten as hw;
    use bernoulli_formats::{gen, Triplets};

    #[test]
    fn schedule_of_known_pattern() {
        // Rows: 0 and 1 independent (level 0); 2 depends on 0 (level 1);
        // 3 depends on 2 (level 2); 4 depends on 1 (level 1).
        let t = Triplets::from_entries(
            5,
            5,
            &[
                (0, 0, 2.0),
                (1, 1, 2.0),
                (2, 0, 1.0),
                (2, 2, 2.0),
                (3, 2, 1.0),
                (3, 3, 2.0),
                (4, 1, 1.0),
                (4, 4, 2.0),
            ],
        );
        let l = Csr::from_triplets(&t);
        let sched = LevelSchedule::build(&l);
        assert_eq!(sched.nlevels(), 3);
        assert_eq!(sched.level_rows(0), &[0, 1]);
        assert_eq!(sched.level_rows(1), &[2, 4]);
        assert_eq!(sched.level_rows(2), &[3]);
        assert!((sched.avg_width() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_one_level() {
        let mut t = Triplets::new(8, 8);
        for i in 0..8 {
            t.push(i, i, 2.0);
        }
        t.normalize();
        let l = Csr::from_triplets(&t);
        let sched = LevelSchedule::build(&l);
        assert_eq!(sched.nlevels(), 1);
        assert_eq!(sched.level_rows(0).len(), 8);
    }

    #[test]
    fn dense_lower_triangle_is_fully_sequential() {
        let mut t = Triplets::new(6, 6);
        for i in 0..6 {
            for j in 0..=i {
                t.push(i, j, if i == j { 4.0 } else { 1.0 });
            }
        }
        t.normalize();
        let sched = LevelSchedule::build(&Csr::from_triplets(&t));
        assert_eq!(sched.nlevels(), 6);
    }

    #[test]
    fn matches_sequential_bitwise() {
        let t = gen::structurally_symmetric(400, 2600, 25, 11).lower_triangle_full_diag(3.0);
        let l = Csr::from_triplets(&t);
        let b0 = gen::dense_vector(400, 7);
        let mut b_seq = b0.clone();
        hw::ts_csr(&l, &mut b_seq);
        for threads in [1, 2, 3, 7, 16] {
            let mut b_par = b0.clone();
            par_ts_csr(&l, &mut b_par, threads);
            assert_eq!(b_seq, b_par, "threads = {threads}");
        }
    }

    #[test]
    fn reused_schedule_matches_fresh() {
        let t = gen::banded(120, 4, 3).lower_triangle_full_diag(2.5);
        let l = Csr::from_triplets(&t);
        let sched = LevelSchedule::build(&l);
        let b0 = gen::dense_vector(120, 9);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        par_ts_csr(&l, &mut b1, 4);
        par_ts_csr_scheduled(&l, &sched, &mut b2, 4);
        assert_eq!(b1, b2);
    }

    #[test]
    fn empty_system() {
        let l = Csr::<f64>::from_triplets(&Triplets::new(0, 0));
        let mut b: Vec<f64> = vec![];
        par_ts_csr(&l, &mut b, 4);
        assert!(b.is_empty());
    }
}
