//! Dense specifications of the BLAS kernels (the high-level API).
//!
//! These are the programs an algorithm designer writes "as if dense"
//! (paper Figs. 3–4); the synthesizer instantiates them for any format.

use bernoulli_ir::{parse_program, Program};

/// Parses a spec source, counting each instantiation under
/// `blas.spec_parses` (one series across all kernels; `max` stays 1).
fn spec(src: &str, what: &str) -> Program {
    bernoulli_trace::counter!("blas.spec_parses");
    parse_program(src).unwrap_or_else(|e| panic!("{what} spec parses: {e}"))
}

/// Matrix–vector multiplication `y += A·x` (paper Fig. 3).
pub fn mvm() -> Program {
    spec(
        r#"
        program mvm(M, N) {
          in matrix A[M][N];
          in vector x[N];
          inout vector y[M];
          for i in 0..M {
            for j in 0..N {
              y[i] = y[i] + A[i][j] * x[j];
            }
          }
        }
        "#,
        "mvm",
    )
}

/// Transposed matrix–vector multiplication `y += Aᵀ·x`.
pub fn mvm_transposed() -> Program {
    spec(
        r#"
        program mvmt(M, N) {
          in matrix A[M][N];
          in vector x[M];
          inout vector y[N];
          for i in 0..M {
            for j in 0..N {
              y[j] = y[j] + A[i][j] * x[i];
            }
          }
        }
        "#,
        "mvmt",
    )
}

/// Lower triangular solve `L·b' = b`, result overwriting `b`
/// (paper Fig. 4, the running example).
pub fn ts() -> Program {
    spec(
        r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
        "#,
        "ts",
    )
}

/// Sparse dot product `s += Σ x[i]·y[i]` of two sparse vectors — the
/// common-enumeration (join) showcase of §4.1. `x` and `y` are declared
/// as vectors; binding sparse-vector views to them turns the dense loop
/// into a merge or hash join.
pub fn spdot() -> Program {
    spec(
        r#"
        program spdot(N) {
          in vector x[N];
          in vector y[N];
          inout vector s[1];
          for i in 0..N {
            s[0] = s[0] + x[i] * y[i];
          }
        }
        "#,
        "spdot",
    )
}

/// Row sums `r[i] += Σ_j A[i][j]` — a second reduction exercising the
/// framework on a different output shape.
pub fn row_sums() -> Program {
    spec(
        r#"
        program rowsums(M, N) {
          in matrix A[M][N];
          inout vector r[M];
          for i in 0..M {
            for j in 0..N {
              r[i] = r[i] + A[i][j];
            }
          }
        }
        "#,
        "rowsums",
    )
}

/// Scaled matrix accumulation into a dense vector of the diagonal:
/// `d[i] += alpha·A[i][i]` modeled with alpha folded to 1 (diagonal
/// extraction) — exercises guard simplification against triangular
/// bounds.
pub fn diag_extract() -> Program {
    spec(
        r#"
        program diagx(N) {
          in matrix A[N][N];
          inout vector d[N];
          for i in 0..N {
            d[i] = d[i] + A[i][i];
          }
        }
        "#,
        "diagx",
    )
}

/// Residual `r = b − A·x` — an imperfectly-nested two-statement kernel
/// (initialize, then accumulate) whose first statement must be hoisted
/// out of the nonzero enumeration.
pub fn residual() -> Program {
    spec(
        r#"
        program residual(M, N) {
          in matrix A[M][N];
          in vector x[N];
          in vector b[M];
          inout vector r[M];
          for i in 0..M {
            r[i] = b[i];
            for j in 0..N {
              r[i] = r[i] - A[i][j] * x[j];
            }
          }
        }
        "#,
        "residual",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_parse_and_have_expected_shape() {
        assert_eq!(mvm().statements().len(), 1);
        assert_eq!(ts().statements().len(), 2);
        assert_eq!(mvm_transposed().params, vec!["M", "N"]);
        assert_eq!(spdot().statements()[0].loop_vars(), vec!["i"]);
        assert_eq!(row_sums().arrays.len(), 2);
        assert_eq!(diag_extract().statements()[0].accesses().len(), 3);
    }

    #[test]
    fn specs_have_sparse_candidates() {
        for p in [
            mvm(),
            mvm_transposed(),
            ts(),
            row_sums(),
            diag_extract(),
            residual(),
        ] {
            assert!(!p.matrices().is_empty(), "{}", p.name);
        }
    }

    #[test]
    fn residual_is_imperfectly_nested() {
        let p = residual();
        let stmts = p.statements();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].loop_vars(), vec!["i"]);
        assert_eq!(stmts[1].loop_vars(), vec!["i", "j"]);
    }
}
