//! Less-specialized multi-right-hand-side kernels — the NIST Fortran
//! library stand-in (paper §5).
//!
//! The paper observes: "The NIST Fortran codes are less specialized
//! (e.g., there is single code for a single or multiple right-hand
//! sides), so they perform worse than both our code and the NIST C
//! code." These kernels reproduce that design: one code path handles
//! `k` right-hand sides stored column-major (`b[i + k_idx*n]`), paying
//! the extra indexing and the inner RHS loop even when `k == 1` — which
//! is how the benchmarks invoke them.

use bernoulli_formats::{Csc, Csr, Jad, Scalar};

/// `Y += A·X` for `k` RHS columns (column-major `x`, `y`).
pub fn mvm_csr_multi<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T], k: usize) {
    assert_eq!(x.len(), a.ncols * k, "x size");
    assert_eq!(y.len(), a.nrows * k, "y size");
    for i in 0..a.nrows {
        for p in a.rowptr[i]..a.rowptr[i + 1] {
            let c = a.colind[p];
            let v = a.values[p];
            for rhs in 0..k {
                y[i + rhs * a.nrows] += v * x[c + rhs * a.ncols];
            }
        }
    }
}

/// `Y += A·X` for `k` RHS columns, CSC.
pub fn mvm_csc_multi<T: Scalar>(a: &Csc<T>, x: &[T], y: &mut [T], k: usize) {
    assert_eq!(x.len(), a.ncols * k, "x size");
    assert_eq!(y.len(), a.nrows * k, "y size");
    for j in 0..a.ncols {
        for p in a.colptr[j]..a.colptr[j + 1] {
            let r = a.rowind[p];
            let v = a.values[p];
            for rhs in 0..k {
                y[r + rhs * a.nrows] += v * x[j + rhs * a.ncols];
            }
        }
    }
}

/// `Y += A·X` for `k` RHS columns, JAD.
pub fn mvm_jad_multi<T: Scalar>(a: &Jad<T>, x: &[T], y: &mut [T], k: usize) {
    assert_eq!(x.len(), a.ncols * k, "x size");
    assert_eq!(y.len(), a.nrows * k, "y size");
    for d in 0..a.ndiags() {
        let lo = a.dptr[d];
        for jj in lo..a.dptr[d + 1] {
            let rr = jj - lo;
            let r = a.iperm[rr];
            let c = a.colind[jj];
            let v = a.values[jj];
            for rhs in 0..k {
                y[r + rhs * a.nrows] += v * x[c + rhs * a.ncols];
            }
        }
    }
}

/// Lower triangular solve for `k` RHS columns, CSR.
pub fn ts_csr_multi<T: Scalar>(l: &Csr<T>, b: &mut [T], k: usize) {
    let n = l.nrows;
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), n * k, "b size");
    for i in 0..n {
        for rhs in 0..k {
            let mut acc = b[i + rhs * n];
            let mut diag = T::ZERO;
            for p in l.rowptr[i]..l.rowptr[i + 1] {
                let c = l.colind[p];
                if c < i {
                    acc -= l.values[p] * b[c + rhs * n];
                } else if c == i {
                    diag = l.values[p];
                }
            }
            b[i + rhs * n] = acc / diag;
        }
    }
}

/// Lower triangular solve for `k` RHS columns, CSC.
pub fn ts_csc_multi<T: Scalar>(l: &Csc<T>, b: &mut [T], k: usize) {
    let n = l.nrows;
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), n * k, "b size");
    for j in 0..n {
        let rng = l.colptr[j]..l.colptr[j + 1];
        let mut diag = T::ZERO;
        for p in rng.clone() {
            if l.rowind[p] == j {
                diag = l.values[p];
            }
        }
        for rhs in 0..k {
            b[j + rhs * n] = b[j + rhs * n] / diag;
            let bj = b[j + rhs * n];
            for p in rng.clone() {
                let r = l.rowind[p];
                if r > j {
                    b[r + rhs * n] -= l.values[p] * bj;
                }
            }
        }
    }
}

/// Lower triangular solve for `k` RHS columns, JAD.
pub fn ts_jad_multi<T: Scalar>(l: &Jad<T>, b: &mut [T], k: usize) {
    let n = l.nrows;
    assert_eq!(l.nrows, l.ncols, "square");
    assert_eq!(b.len(), n * k, "b size");
    for r in 0..n {
        let rr = l.iperm_inv[r];
        for rhs in 0..k {
            let mut acc = b[r + rhs * n];
            let mut diag = T::ZERO;
            for d in 0..l.rowlen[rr] {
                let jj = l.dptr[d] + rr;
                let c = l.colind[jj];
                if c < r {
                    acc -= l.values[jj] * b[c + rhs * n];
                } else if c == r {
                    diag = l.values[jj];
                }
            }
            b[r + rhs * n] = acc / diag;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::testutil::*;
    use crate::handwritten::{mvm_csr, ts_csr};
    use bernoulli_formats::{Csc, Csr, Jad};

    #[test]
    fn single_rhs_matches_specialized() {
        let (t, x) = workload();
        let a = Csr::from_triplets(&t);
        let mut y1 = vec![0.0; t.nrows()];
        mvm_csr(&a, &x, &mut y1);
        let mut y2 = vec![0.0; t.nrows()];
        mvm_csr_multi(&a, &x, &mut y2, 1);
        assert_close(&y1, &y2);
    }

    #[test]
    fn multi_rhs_is_columnwise() {
        let (t, x) = workload();
        let n = t.nrows();
        let a = Csr::from_triplets(&t);
        // Two RHS: x and 2x.
        let mut xs = x.clone();
        xs.extend(x.iter().map(|v| 2.0 * v));
        let mut ys = vec![0.0; 2 * n];
        mvm_csr_multi(&a, &xs, &mut ys, 2);
        let r = ref_mvm(&t, &x);
        assert_close(&ys[..n], &r);
        let r2: Vec<f64> = r.iter().map(|v| 2.0 * v).collect();
        assert_close(&ys[n..], &r2);
    }

    #[test]
    fn ts_multi_matches_reference() {
        let (t, b0) = tri_workload();
        let n = t.nrows();
        let expect = ref_ts(&t, &b0);
        for fmt in 0..3 {
            let mut b = b0.clone();
            match fmt {
                0 => ts_csr_multi(&Csr::from_triplets(&t), &mut b, 1),
                1 => ts_csc_multi(&Csc::from_triplets(&t), &mut b, 1),
                _ => ts_jad_multi(&Jad::from_triplets(&t), &mut b, 1),
            }
            assert_close(&b[..n], &expect);
        }
    }

    #[test]
    fn ts_multi_k2() {
        let (t, b0) = tri_workload();
        let n = t.nrows();
        let mut bs = b0.clone();
        bs.extend(b0.iter().map(|v| 3.0 * v));
        ts_csr_multi(&Csr::from_triplets(&t), &mut bs, 2);
        let r = ref_ts(&t, &b0);
        assert_close(&bs[..n], &r);
        let r3: Vec<f64> = r.iter().map(|v| 3.0 * v).collect();
        assert_close(&bs[n..], &r3);
    }

    #[test]
    fn single_rhs_csr_ts_same_as_specialized() {
        let (t, b0) = tri_workload();
        let l = Csr::from_triplets(&t);
        let mut b1 = b0.clone();
        ts_csr(&l, &mut b1);
        let mut b2 = b0.clone();
        ts_csr_multi(&l, &mut b2, 1);
        assert_close(&b1, &b2);
    }

    #[test]
    fn jad_mvm_multi() {
        let (t, x) = workload();
        let a = Jad::from_triplets(&t);
        let mut y = vec![0.0; t.nrows()];
        mvm_jad_multi(&a, &x, &mut y, 1);
        assert_close(&y, &ref_mvm(&t, &x));
    }

    #[test]
    fn csc_mvm_multi() {
        let (t, x) = workload();
        let a = Csc::from_triplets(&t);
        let mut y = vec![0.0; t.nrows()];
        mvm_csc_multi(&a, &x, &mut y, 1);
        assert_close(&y, &ref_mvm(&t, &x));
    }
}
