//! Row-partitioned parallel MVM over scoped threads.
//!
//! A paper-era extension: CSR's row-indexed structure makes `y += A·x`
//! embarrassingly parallel over disjoint row blocks. Implemented with
//! `crossbeam::scope` so the matrix and `x` are borrowed, and each thread
//! owns a disjoint `&mut` slice of `y` — data-race freedom by
//! construction.

use bernoulli_formats::{Csr, Scalar};

/// `y += A·x`, computed over `nthreads` row blocks.
///
/// Result is identical (bitwise) to the sequential kernel: each `y[i]` is
/// accumulated by exactly one thread in the same order.
pub fn par_mvm_csr<T: Scalar + Send + Sync>(a: &Csr<T>, x: &[T], y: &mut [T], nthreads: usize) {
    assert_eq!(x.len(), a.ncols, "x length");
    assert_eq!(y.len(), a.nrows, "y length");
    let nthreads = nthreads.max(1).min(a.nrows.max(1));
    if nthreads <= 1 || a.nrows == 0 {
        crate::handwritten::mvm_csr(a, x, y);
        return;
    }
    // Split rows into contiguous blocks.
    let block = a.nrows.div_ceil(nthreads);
    crossbeam::scope(|scope| {
        let mut rest = y;
        let mut row0 = 0usize;
        while row0 < a.nrows {
            let len = block.min(a.nrows - row0);
            let (mine, tail) = rest.split_at_mut(len);
            rest = tail;
            let start = row0;
            scope.spawn(move |_| {
                for (k, yi) in mine.iter_mut().enumerate() {
                    let i = start + k;
                    let mut acc = T::ZERO;
                    for p in a.rowptr[i]..a.rowptr[i + 1] {
                        acc += a.values[p] * x[a.colind[p]];
                    }
                    *yi += acc;
                }
            });
            row0 += len;
        }
    })
    .expect("worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handwritten::mvm_csr;
    use bernoulli_formats::gen;

    #[test]
    fn matches_sequential_bitwise() {
        let t = gen::structurally_symmetric(500, 4000, 40, 21);
        let a = Csr::from_triplets(&t);
        let x = gen::dense_vector(500, 2);
        let mut y_seq = vec![0.0; 500];
        mvm_csr(&a, &x, &mut y_seq);
        for threads in [1, 2, 3, 7, 16] {
            let mut y_par = vec![0.0; 500];
            par_mvm_csr(&a, &x, &mut y_par, threads);
            assert_eq!(y_seq, y_par, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let t = gen::tridiagonal(3);
        let a = Csr::from_triplets(&t);
        let x = vec![1.0, 1.0, 1.0];
        let mut y = vec![0.0; 3];
        par_mvm_csr(&a, &x, &mut y, 64);
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn empty_matrix() {
        let t = bernoulli_formats::Triplets::new(0, 0);
        let a = Csr::from_triplets(&t);
        let mut y: Vec<f64> = vec![];
        par_mvm_csr(&a, &[], &mut y, 4);
    }
}
