//! Sparse BLAS kernels: baselines, dense specifications, synthesized
//! kernels and format-independent iterative methods.
//!
//! This crate plays three roles from the paper's evaluation (§5):
//!
//! - [`handwritten`] is the **NIST Sparse BLAS C library** stand-in:
//!   specialized, idiomatic per-format kernels written by hand in the
//!   reference algorithms' loop structure.
//! - [`generic_rhs`] is the **NIST Fortran library** stand-in: a single
//!   less-specialized code path handling any number of right-hand sides
//!   through strided indexing, invoked with one RHS in the benchmarks —
//!   reproducing the paper's observation that the unspecialized code is
//!   slower.
//! - [`synth`] holds the **compiler-generated kernels**: the committed
//!   output of `bernoulli-synth`'s Rust emitter for every
//!   (kernel, format) pair of the evaluation, with fidelity tests that
//!   re-run the synthesizer and compare byte-for-byte.
//!
//! On top, [`solvers`] implements format-independent iterative methods
//! (conjugate gradients, Jacobi, power iteration) exactly the way the
//! paper's introduction motivates: high-level algorithms written once
//! against an abstract matrix-vector product. [`par`] is the parallel
//! execution subsystem — a persistent worker pool, nnz-balanced
//! partitioning, parallel MVM/transpose-MVM for every stored format, a
//! level-scheduled triangular solve and parallel vector operations —
//! exercising the shared-memory substrate the paper's compilation
//! framework targets.

pub mod generic_rhs;
pub mod handwritten;
pub mod kernels;
pub mod par;
pub mod solvers;
pub mod synth;

/// Former name of the [`par`] subsystem, kept for source compatibility.
pub use par as parallel;
