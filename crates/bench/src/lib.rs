//! Benchmark harness: workloads, timing, and paper-style reporting
//! (paper §5).
//!
//! The Criterion benches under `benches/` regenerate the paper's figures;
//! the `experiments` binary prints the same data as compact MFLOP/s
//! tables for EXPERIMENTS.md.

#![allow(clippy::needless_range_loop)]
use bernoulli_formats::{gen, Triplets};
use std::time::Instant;

/// The evaluation input: the synthetic stand-in for Harwell–Boeing
/// `can_1072` (see DESIGN.md substitution 1) — or, when the environment
/// variable `CAN1072_MTX` points at a Matrix Market file of the real
/// matrix, that file (pattern entries get unit values; the diagonal is
/// made structurally full for the TS operand, as the NIST drivers do).
pub fn can1072() -> Triplets<f64> {
    if let Ok(path) = std::env::var("CAN1072_MTX") {
        let file = std::fs::File::open(&path).unwrap_or_else(|e| panic!("CAN1072_MTX={path}: {e}"));
        let t = bernoulli_formats::io::read_matrix_market(std::io::BufReader::new(file))
            .unwrap_or_else(|e| panic!("CAN1072_MTX={path}: {e}"));
        eprintln!(
            "using real matrix from {path}: {}x{} nnz={}",
            t.nrows(),
            t.ncols(),
            t.nnz()
        );
        return t;
    }
    gen::can_1072_like()
}

/// Lower triangle (full diagonal) of [`can1072`] — the TS operand.
pub fn can1072_lower() -> Triplets<f64> {
    can1072().lower_triangle_full_diag(1.0)
}

/// Secondary inputs for the "representative for other inputs" claim (E3).
pub fn extra_inputs() -> Vec<(&'static str, Triplets<f64>)> {
    vec![
        ("poisson2d_32", gen::poisson2d(32)),
        ("banded_1000_b8", gen::banded(1000, 8, 17)),
        ("random_1000", gen::random_sparse(1000, 1000, 12000, 23)),
    ]
}

/// Median-of-runs wall time for `f`, in seconds, with a warmup run.
pub fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Best (minimum) of `rounds` medians — robust against noisy-neighbor
/// interference; use for cross-implementation comparisons.
pub fn time_best_of(rounds: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = time_median(reps, &mut f);
        if t < best {
            best = t;
        }
    }
    best
}

/// MFLOP/s for a kernel performing `flops` floating point operations.
pub fn mflops(flops: f64, seconds: f64) -> f64 {
    flops / seconds / 1e6
}

/// Useful FLOP counts: MVM does 2·nnz, TS does 2·nnz (one mul+sub per
/// off-diagonal entry, one divide per row; we follow the standard 2·nnz
/// accounting the sparse BLAS literature uses).
pub fn mvm_flops(nnz: usize) -> f64 {
    2.0 * nnz as f64
}

/// TS FLOP count (same 2·nnz convention).
pub fn ts_flops(nnz: usize) -> f64 {
    2.0 * nnz as f64
}

/// Prints one table row: label + MFLOP/s figures.
pub fn print_row(label: &str, cells: &[(String, f64)]) {
    print!("{label:<28}");
    for (name, v) in cells {
        print!(" {name}={v:8.1}");
    }
    println!();
}

/// Machine-readable benchmark reports: a minimal JSON value type and
/// writer, so every `experiments` subcommand can emit its table as
/// `BENCH_<name>.json` without external dependencies.
pub mod report {
    /// A JSON value. Non-finite numbers serialize as `null` (JSON has
    /// no NaN/Inf), everything else round-trips.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Convenience constructor for any numeric type.
        pub fn num(v: impl Into<f64>) -> Json {
            Json::Num(v.into())
        }

        /// Convenience constructor for strings.
        pub fn str(v: impl Into<String>) -> Json {
            Json::Str(v.into())
        }

        /// Serializes with two-space indentation and `\n` separators.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out, 0);
            out
        }

        fn render_into(&self, out: &mut String, depth: usize) {
            let pad = |out: &mut String, d: usize| {
                for _ in 0..d {
                    out.push_str("  ");
                }
            };
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Num(v) if !v.is_finite() => out.push_str("null"),
                Json::Num(v) => out.push_str(&format!("{v}")),
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\r' => out.push_str("\\r"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        pad(out, depth + 1);
                        item.render_into(out, depth + 1);
                        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    pad(out, depth);
                    out.push(']');
                }
                Json::Obj(fields) => {
                    if fields.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push_str("{\n");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        pad(out, depth + 1);
                        Json::Str(k.clone()).render_into(out, depth + 1);
                        out.push_str(": ");
                        v.render_into(out, depth + 1);
                        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                    }
                    pad(out, depth);
                    out.push('}');
                }
            }
        }
    }

    /// An object builder that keeps insertion order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Writes `json` (plus a trailing newline) to `path` and logs it.
    pub fn write(path: &str, json: &Json) {
        let mut text = json.render();
        text.push('\n');
        match std::fs::write(path, text) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_materialize() {
        let t = can1072();
        assert_eq!(t.nrows(), 1072);
        let l = can1072_lower();
        assert!(l.nnz() >= 1072);
        assert_eq!(extra_inputs().len(), 3);
    }

    #[test]
    fn report_renders_valid_json() {
        use report::{obj, Json};
        let j = obj(vec![
            ("name", Json::str("mvm \"csr\"\n")),
            ("mflops", Json::num(123.5)),
            ("count", Json::num(3u32)),
            ("nan", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::num(1u32), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.render();
        assert!(s.contains("\"mvm \\\"csr\\\"\\n\""));
        assert!(s.contains("\"mflops\": 123.5"));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"empty\": []"));
        // Balanced brackets, comma-separated items.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn timing_is_positive() {
        let s = time_median(3, || {
            let mut acc = 0.0f64;
            for i in 0..1000 {
                acc += (i as f64).sqrt();
            }
            std::hint::black_box(acc);
        });
        assert!(s > 0.0);
        assert!(mflops(1e6, s) > 0.0);
    }
}
