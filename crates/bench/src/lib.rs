//! Benchmark harness: workloads, timing, and paper-style reporting
//! (paper §5).
//!
//! The Criterion benches under `benches/` regenerate the paper's figures;
//! the `experiments` binary prints the same data as compact MFLOP/s
//! tables for EXPERIMENTS.md.

#![allow(clippy::needless_range_loop)]
use bernoulli_formats::{gen, Triplets};
use std::time::Instant;

/// The evaluation input: the synthetic stand-in for Harwell–Boeing
/// `can_1072` (see DESIGN.md substitution 1) — or, when the environment
/// variable `CAN1072_MTX` points at a Matrix Market file of the real
/// matrix, that file (pattern entries get unit values; the diagonal is
/// made structurally full for the TS operand, as the NIST drivers do).
pub fn can1072() -> Triplets<f64> {
    if let Ok(path) = std::env::var("CAN1072_MTX") {
        let file = std::fs::File::open(&path).unwrap_or_else(|e| panic!("CAN1072_MTX={path}: {e}"));
        let t = bernoulli_formats::io::read_matrix_market(std::io::BufReader::new(file))
            .unwrap_or_else(|e| panic!("CAN1072_MTX={path}: {e}"));
        eprintln!(
            "using real matrix from {path}: {}x{} nnz={}",
            t.nrows(),
            t.ncols(),
            t.nnz()
        );
        return t;
    }
    gen::can_1072_like()
}

/// Lower triangle (full diagonal) of [`can1072`] — the TS operand.
pub fn can1072_lower() -> Triplets<f64> {
    can1072().lower_triangle_full_diag(1.0)
}

/// Secondary inputs for the "representative for other inputs" claim (E3).
pub fn extra_inputs() -> Vec<(&'static str, Triplets<f64>)> {
    vec![
        ("poisson2d_32", gen::poisson2d(32)),
        ("banded_1000_b8", gen::banded(1000, 8, 17)),
        ("random_1000", gen::random_sparse(1000, 1000, 12000, 23)),
    ]
}

/// Median-of-runs wall time for `f`, in seconds, with a warmup run.
pub fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Best (minimum) of `rounds` medians — robust against noisy-neighbor
/// interference; use for cross-implementation comparisons.
pub fn time_best_of(rounds: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = time_median(reps, &mut f);
        if t < best {
            best = t;
        }
    }
    best
}

/// MFLOP/s for a kernel performing `flops` floating point operations.
pub fn mflops(flops: f64, seconds: f64) -> f64 {
    flops / seconds / 1e6
}

/// Useful FLOP counts: MVM does 2·nnz, TS does 2·nnz (one mul+sub per
/// off-diagonal entry, one divide per row; we follow the standard 2·nnz
/// accounting the sparse BLAS literature uses).
pub fn mvm_flops(nnz: usize) -> f64 {
    2.0 * nnz as f64
}

/// TS FLOP count (same 2·nnz convention).
pub fn ts_flops(nnz: usize) -> f64 {
    2.0 * nnz as f64
}

/// Prints one table row: label + MFLOP/s figures.
pub fn print_row(label: &str, cells: &[(String, f64)]) {
    print!("{label:<28}");
    for (name, v) in cells {
        print!(" {name}={v:8.1}");
    }
    println!();
}

/// Machine-readable benchmark reports: a minimal JSON value type and
/// writer, so every `experiments` subcommand can emit its table as
/// `BENCH_<name>.json` without external dependencies.
pub mod report {
    /// A JSON value. Non-finite numbers serialize as `null` (JSON has
    /// no NaN/Inf), everything else round-trips.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Convenience constructor for any numeric type.
        pub fn num(v: impl Into<f64>) -> Json {
            Json::Num(v.into())
        }

        /// Convenience constructor for strings.
        pub fn str(v: impl Into<String>) -> Json {
            Json::Str(v.into())
        }

        /// Serializes with two-space indentation and `\n` separators.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out, 0);
            out
        }

        fn render_into(&self, out: &mut String, depth: usize) {
            let pad = |out: &mut String, d: usize| {
                for _ in 0..d {
                    out.push_str("  ");
                }
            };
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Num(v) if !v.is_finite() => out.push_str("null"),
                Json::Num(v) => out.push_str(&format!("{v}")),
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\r' => out.push_str("\\r"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        pad(out, depth + 1);
                        item.render_into(out, depth + 1);
                        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    pad(out, depth);
                    out.push(']');
                }
                Json::Obj(fields) => {
                    if fields.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push_str("{\n");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        pad(out, depth + 1);
                        Json::Str(k.clone()).render_into(out, depth + 1);
                        out.push_str(": ");
                        v.render_into(out, depth + 1);
                        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                    }
                    pad(out, depth);
                    out.push('}');
                }
            }
        }
    }

    /// An object builder that keeps insertion order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Writes `json` (plus a trailing newline) to `path` and logs it.
    pub fn write(path: &str, json: &Json) {
        let mut text = json.render();
        text.push('\n');
        match std::fs::write(path, text) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    impl Json {
        /// Field lookup on an object (first match; `None` otherwise).
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Json::Num(v) => Some(*v),
                _ => None,
            }
        }

        /// The string value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The items, if this is an array.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses a JSON document (the full grammar, not just what
    /// [`Json::render`] emits, minus `\u` surrogate pairs — enough for
    /// the perf gate to read committed and freshly generated
    /// `BENCH_*.json` files back).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("expected '{word}' at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek() {
                Some(b'n') => self.lit("null", Json::Null),
                Some(b't') => self.lit("true", Json::Bool(true)),
                Some(b'f') => self.lit("false", Json::Bool(false)),
                Some(b'"') => self.string().map(Json::Str),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'-' | b'0'..=b'9') => self.number(),
                other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                match b {
                    b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                    _ => break,
                }
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or("unterminated escape")?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(hex)
                                        .ok_or_else(|| format!("bad codepoint {hex:#x}"))?,
                                );
                            }
                            other => return Err(format!("bad escape '\\{}'", other as char)),
                        }
                    }
                    Some(_) => {
                        // Copy one UTF-8 scalar (multi-byte sequences pass
                        // through unmodified).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|e| format!("invalid UTF-8: {e}"))?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let k = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                fields.push((k, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_materialize() {
        let t = can1072();
        assert_eq!(t.nrows(), 1072);
        let l = can1072_lower();
        assert!(l.nnz() >= 1072);
        assert_eq!(extra_inputs().len(), 3);
    }

    #[test]
    fn report_renders_valid_json() {
        use report::{obj, Json};
        let j = obj(vec![
            ("name", Json::str("mvm \"csr\"\n")),
            ("mflops", Json::num(123.5)),
            ("count", Json::num(3u32)),
            ("nan", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::num(1u32), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.render();
        assert!(s.contains("\"mvm \\\"csr\\\"\\n\""));
        assert!(s.contains("\"mflops\": 123.5"));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"empty\": []"));
        // Balanced brackets, comma-separated items.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn report_parse_round_trips() {
        use report::{obj, parse, Json};
        let j = obj(vec![
            ("name", Json::str("mvm \"csr\"\n\ttab")),
            ("mflops", Json::num(123.5)),
            ("neg", Json::num(-0.25)),
            ("exp", Json::Num(1.5e-3)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("rows", Json::Arr(vec![Json::num(1u32), Json::str("x")])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("unicode", Json::str("µ—λ")),
        ]);
        let round = parse(&j.render()).expect("parses");
        assert_eq!(round, j);
        // Accessors navigate the parsed tree.
        assert_eq!(round.get("mflops").and_then(Json::as_num), Some(123.5));
        assert_eq!(
            round.get("name").and_then(Json::as_str),
            Some("mvm \"csr\"\n\ttab")
        );
        assert_eq!(
            round.get("rows").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(round.get("missing"), None);
    }

    #[test]
    fn report_parse_rejects_malformed() {
        use report::parse;
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\": 1,}",
            "[--3]",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
        // Whitespace-tolerant and standalone scalars are fine.
        assert!(parse("  [ 1 , 2 ]\n").is_ok());
        assert!(parse("null").is_ok());
        assert!(parse("\"\\u00e9\"").is_ok());
    }

    #[test]
    fn timing_is_positive() {
        let s = time_median(3, || {
            let mut acc = 0.0f64;
            for i in 0..1000 {
                acc += (i as f64).sqrt();
            }
            std::hint::black_box(acc);
        });
        assert!(s > 0.0);
        assert!(mflops(1e6, s) > 0.0);
    }
}
