//! Benchmark harness: workloads, timing, and paper-style reporting
//! (paper §5).
//!
//! The Criterion benches under `benches/` regenerate the paper's figures;
//! the `experiments` binary prints the same data as compact MFLOP/s
//! tables for EXPERIMENTS.md.

#![allow(clippy::needless_range_loop)]
use bernoulli_formats::{gen, Triplets};
use std::time::Instant;

/// The evaluation input: the synthetic stand-in for Harwell–Boeing
/// `can_1072` (see DESIGN.md substitution 1) — or, when the environment
/// variable `CAN1072_MTX` points at a Matrix Market file of the real
/// matrix, that file (pattern entries get unit values; the diagonal is
/// made structurally full for the TS operand, as the NIST drivers do).
pub fn can1072() -> Triplets<f64> {
    if let Ok(path) = std::env::var("CAN1072_MTX") {
        let file = std::fs::File::open(&path)
            .unwrap_or_else(|e| panic!("CAN1072_MTX={path}: {e}"));
        let t = bernoulli_formats::io::read_matrix_market(std::io::BufReader::new(file))
            .unwrap_or_else(|e| panic!("CAN1072_MTX={path}: {e}"));
        eprintln!(
            "using real matrix from {path}: {}x{} nnz={}",
            t.nrows(),
            t.ncols(),
            t.nnz()
        );
        return t;
    }
    gen::can_1072_like()
}

/// Lower triangle (full diagonal) of [`can1072`] — the TS operand.
pub fn can1072_lower() -> Triplets<f64> {
    can1072().lower_triangle_full_diag(1.0)
}

/// Secondary inputs for the "representative for other inputs" claim (E3).
pub fn extra_inputs() -> Vec<(&'static str, Triplets<f64>)> {
    vec![
        ("poisson2d_32", gen::poisson2d(32)),
        ("banded_1000_b8", gen::banded(1000, 8, 17)),
        ("random_1000", gen::random_sparse(1000, 1000, 12000, 23)),
    ]
}

/// Median-of-runs wall time for `f`, in seconds, with a warmup run.
pub fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Best (minimum) of `rounds` medians — robust against noisy-neighbor
/// interference; use for cross-implementation comparisons.
pub fn time_best_of(rounds: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = time_median(reps, &mut f);
        if t < best {
            best = t;
        }
    }
    best
}

/// MFLOP/s for a kernel performing `flops` floating point operations.
pub fn mflops(flops: f64, seconds: f64) -> f64 {
    flops / seconds / 1e6
}

/// Useful FLOP counts: MVM does 2·nnz, TS does 2·nnz (one mul+sub per
/// off-diagonal entry, one divide per row; we follow the standard 2·nnz
/// accounting the sparse BLAS literature uses).
pub fn mvm_flops(nnz: usize) -> f64 {
    2.0 * nnz as f64
}

/// TS FLOP count (same 2·nnz convention).
pub fn ts_flops(nnz: usize) -> f64 {
    2.0 * nnz as f64
}

/// Prints one table row: label + MFLOP/s figures.
pub fn print_row(label: &str, cells: &[(String, f64)]) {
    print!("{label:<28}");
    for (name, v) in cells {
        print!(" {name}={v:8.1}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_materialize() {
        let t = can1072();
        assert_eq!(t.nrows(), 1072);
        let l = can1072_lower();
        assert!(l.nnz() >= 1072);
        assert_eq!(extra_inputs().len(), 3);
    }

    #[test]
    fn timing_is_positive() {
        let s = time_median(3, || {
            let mut acc = 0.0f64;
            for i in 0..1000 {
                acc += (i as f64).sqrt();
            }
            std::hint::black_box(acc);
        });
        assert!(s > 0.0);
        assert!(mflops(1e6, s) > 0.0);
    }
}
