//! Compares two `BENCH_*.json` reports and flags throughput
//! regressions — the non-blocking perf gate CI runs against the
//! committed `BENCH_mvm.json` baseline.
//!
//! Usage: `perf_diff <baseline.json> <current.json> [threshold]`
//!
//! Walks both reports, pairs up every higher-is-better throughput leaf
//! (`synth`, `nist_c`, `nist_f`, `mflops`, `seq_mflops`,
//! `csr_parallel_4`) by its labeled path, and prints the relative
//! change. Exit codes: 1 if any metric dropped by more than
//! `threshold` (default 0.25); 2 on unreadable/unparsable input; 3
//! (with a typed [`DiffError`]) when the baseline is missing a series
//! the candidate reports — a stale baseline, which would otherwise
//! silently exempt the new series from the gate. Metrics present in
//! the baseline but missing from the candidate are reported but never
//! fail, so reports can shrink deliberately.

use bernoulli_bench::report::{parse, Json};

/// Throughput leaves (higher is better). Time-per-op fields (`*_us`,
/// `*_ms`) are deliberately excluded: their medians live in the same
/// reports but regressions there are already visible through these.
/// The `*_per_s` and `poly_cache_hit_rate` leaves come from the S34
/// synthesis-performance report (`BENCH_synth.json`); the
/// `session_*_per_s` pair measures the S35 embedding lifecycle (a
/// brand-new `Session` compiling once vs one more compile on a session
/// that already holds the plan). The `*_mflops` family, the
/// `loaded_vs_*` ratios and `warm_load_per_s` come from the S37
/// compiled-kernel report (`BENCH_kernels.json`); the ratios pit two
/// paths measured in the same run against each other, so they stay
/// meaningful on noisy hosts where absolute MFLOP/s swing, and
/// `warm_load_per_s` regressing means warm artifact-cache loads are no
/// longer sub-millisecond. `throughput_per_s` / `p99_per_s` (inverse
/// tail latency) and `warm_vs_cold_speedup` gate the S38 multi-tenant
/// service report (`BENCH_service.json`). `advisor_accuracy`
/// (picked-best fraction) and `chosen_mflops` (throughput of the
/// advisor's chosen format) gate the S40 structure-aware selection
/// report (`BENCH_advisor.json`). `validation_overhead` (warm load with
/// the differential-validation memo vs validation off, ~1.0) and
/// `coalesced_per_s` (16 coalesced clients on one key) gate the S41
/// self-healing report.
const METRICS: [&str; 28] = [
    "synth",
    "nist_c",
    "nist_f",
    "mflops",
    "seq_mflops",
    "csr_parallel_4",
    "seq_per_s",
    "par_per_s",
    "warm_per_s",
    "budgeted_per_s",
    "session_fresh_per_s",
    "session_reused_per_s",
    "poly_cache_hit_rate",
    "loaded_mflops",
    "hand_mflops",
    "committed_mflops",
    "interp_mflops",
    "par_loaded_mflops",
    "loaded_vs_hand",
    "loaded_vs_interp",
    "warm_load_per_s",
    "throughput_per_s",
    "p99_per_s",
    "warm_vs_cold_speedup",
    "advisor_accuracy",
    "chosen_mflops",
    "validation_overhead",
    "coalesced_per_s",
];

/// Flattens a report into `(labeled path, value)` pairs; objects
/// contribute their identifying field (`input`, `format`, `name`,
/// `workload`, `threads`) to the path so rows pair up even if array
/// order changes.
fn flatten(j: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match j {
        Json::Obj(fields) => {
            let label = fields.iter().find_map(|(k, v)| {
                if matches!(k.as_str(), "input" | "format" | "name" | "workload") {
                    v.as_str().map(str::to_string)
                } else if k == "threads" {
                    v.as_num().map(|n| format!("t{n}"))
                } else {
                    None
                }
            });
            let base = match label {
                Some(l) => format!("{prefix}/{l}"),
                None => prefix.to_string(),
            };
            for (k, v) in fields {
                match v {
                    Json::Num(x) if METRICS.contains(&k.as_str()) => {
                        out.push((format!("{base}.{k}"), *x));
                    }
                    Json::Obj(_) | Json::Arr(_) => flatten(v, &base, out),
                    _ => {}
                }
            }
        }
        Json::Arr(items) => {
            for item in items {
                flatten(item, prefix, out);
            }
        }
        _ => {}
    }
}

/// A typed comparison failure that is not a throughput regression.
#[derive(Debug, PartialEq)]
enum DiffError {
    /// The baseline lacks series the candidate reports: comparing
    /// against it would silently exempt those series from the gate.
    /// The fix is regenerating (re-committing) the baseline.
    BaselineMissingSeries { paths: Vec<String> },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::BaselineMissingSeries { paths } => {
                writeln!(
                    f,
                    "baseline is missing {} series present in the candidate \
                     (stale baseline — regenerate it):",
                    paths.len()
                )?;
                for p in paths {
                    writeln!(f, "  {p}")?;
                }
                Ok(())
            }
        }
    }
}

/// Series the candidate reports that the baseline does not.
fn baseline_gaps(baseline: &[(String, f64)], current: &[(String, f64)]) -> Option<DiffError> {
    let paths: Vec<String> = current
        .iter()
        .filter(|(p, _)| !baseline.iter().any(|(b, _)| b == p))
        .map(|(p, _)| p.clone())
        .collect();
    if paths.is_empty() {
        None
    } else {
        Some(DiffError::BaselineMissingSeries { paths })
    }
}

/// Pairs baseline and current metrics and returns the regressed paths
/// (relative drop > `threshold`).
fn regressions(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    threshold: f64,
) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for (path, old) in baseline {
        if let Some((_, new)) = current.iter().find(|(p, _)| p == path) {
            if *old > 0.0 && *new < *old * (1.0 - threshold) {
                out.push((path.clone(), *old, *new));
            }
        }
    }
    out
}

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let json = parse(&text).unwrap_or_else(|e| {
        eprintln!("perf_diff: cannot parse {path}: {e}");
        std::process::exit(2);
    });
    let mut flat = Vec::new();
    flatten(&json, "", &mut flat);
    flat
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: perf_diff <baseline.json> <current.json> [threshold]");
        std::process::exit(2);
    }
    let threshold: f64 = args
        .get(3)
        .map(|s| s.parse().expect("threshold parses as a float"))
        .unwrap_or(0.25);

    let baseline = load(&args[1]);
    let current = load(&args[2]);
    println!(
        "perf_diff: {} baseline metrics vs {} current (threshold {:.0}%)",
        baseline.len(),
        current.len(),
        threshold * 100.0
    );
    for (path, old) in &baseline {
        match current.iter().find(|(p, _)| p == path) {
            Some((_, new)) => {
                let change = if *old > 0.0 { (new - old) / old } else { 0.0 };
                println!(
                    "  {path:<48} {old:>10.1} -> {new:>10.1}  ({change:+7.1}%)",
                    change = change * 100.0
                );
            }
            None => println!("  {path:<48} {old:>10.1} -> (missing)"),
        }
    }

    let regressed = regressions(&baseline, &current, threshold);
    if !regressed.is_empty() {
        println!("perf_diff: {} metric(s) regressed:", regressed.len());
        for (path, old, new) in &regressed {
            println!(
                "  REGRESSION {path}: {old:.1} -> {new:.1} ({:+.1}%)",
                (new - old) / old * 100.0
            );
        }
        std::process::exit(1);
    }
    if let Some(e) = baseline_gaps(&baseline, &current) {
        eprintln!("perf_diff: error: {e}");
        std::process::exit(3);
    }
    println!(
        "perf_diff: OK — no metric dropped more than {:.0}%",
        threshold * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bernoulli_bench::report::obj;

    fn sample(csr_synth: f64) -> Json {
        obj(vec![
            ("experiment", Json::str("mvm")),
            ("unit", Json::str("MFLOP/s")),
            (
                "inputs",
                Json::Arr(vec![obj(vec![
                    ("input", Json::str("can1072")),
                    ("nnz", Json::num(12444.0)),
                    (
                        "formats",
                        Json::Arr(vec![
                            obj(vec![
                                ("format", Json::str("csr")),
                                ("synth", Json::num(csr_synth)),
                                ("nist_c", Json::num(900.0)),
                            ]),
                            obj(vec![
                                ("format", Json::str("ell")),
                                ("synth", Json::num(700.0)),
                                ("nist_c", Json::num(710.0)),
                            ]),
                        ]),
                    ),
                    ("csr_parallel_4", Json::num(1500.0)),
                ])]),
            ),
        ])
    }

    #[test]
    fn flatten_labels_rows_and_skips_non_metrics() {
        let mut flat = Vec::new();
        flatten(&sample(800.0), "", &mut flat);
        let keys: Vec<&str> = flat.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"/can1072/csr.synth"));
        assert!(keys.contains(&"/can1072/ell.nist_c"));
        assert!(keys.contains(&"/can1072.csr_parallel_4"));
        // `nnz` is shape metadata, not a throughput metric.
        assert!(!keys.iter().any(|k| k.contains("nnz")));
        assert_eq!(flat.len(), 5);
    }

    #[test]
    fn session_lifecycle_metrics_are_tracked() {
        let synth_report = obj(vec![
            ("experiment", Json::str("synth")),
            (
                "workloads",
                Json::Arr(vec![obj(vec![
                    ("workload", Json::str("mvm/csr")),
                    ("warm_per_s", Json::num(1800.0)),
                    ("session_fresh_ms", Json::num(0.8)),
                    ("session_fresh_per_s", Json::num(1250.0)),
                    ("session_reused_per_s", Json::num(38000.0)),
                    ("poly_cache_hit_rate", Json::num(0.46)),
                ])]),
            ),
        ]);
        let mut flat = Vec::new();
        flatten(&synth_report, "", &mut flat);
        let keys: Vec<&str> = flat.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"/mvm/csr.session_fresh_per_s"));
        assert!(keys.contains(&"/mvm/csr.session_reused_per_s"));
        assert!(keys.contains(&"/mvm/csr.poly_cache_hit_rate"));
        // Raw millisecond fields stay out of the gate.
        assert!(!keys.iter().any(|k| k.contains("session_fresh_ms")));
        // A regression in the reused-session path is caught like any
        // other throughput drop.
        let degraded = obj(vec![(
            "workloads",
            Json::Arr(vec![obj(vec![
                ("workload", Json::str("mvm/csr")),
                ("session_reused_per_s", Json::num(9000.0)),
            ])]),
        )]);
        let mut cur = Vec::new();
        flatten(&degraded, "", &mut cur);
        let r = regressions(&flat, &cur, 0.25);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "/mvm/csr.session_reused_per_s");
    }

    #[test]
    fn regression_detection_respects_threshold() {
        let mut base = Vec::new();
        flatten(&sample(800.0), "", &mut base);
        // 10% drop on csr.synth: within the 25% threshold.
        let mut ok = Vec::new();
        flatten(&sample(720.0), "", &mut ok);
        assert!(regressions(&base, &ok, 0.25).is_empty());
        // 50% drop: flagged, and only that metric.
        let mut bad = Vec::new();
        flatten(&sample(400.0), "", &mut bad);
        let r = regressions(&base, &bad, 0.25);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "/can1072/csr.synth");
        // Metrics missing from the current report never fail the gate.
        let shorter: Vec<(String, f64)> = bad
            .iter()
            .filter(|(k, _)| !k.ends_with(".synth"))
            .cloned()
            .collect();
        assert!(regressions(&base, &shorter, 0.25).is_empty());
    }

    #[test]
    fn stale_baseline_is_a_typed_error() {
        let mut base = Vec::new();
        flatten(&sample(800.0), "", &mut base);
        let mut cur = Vec::new();
        flatten(&sample(800.0), "", &mut cur);
        // Identical series: no gap.
        assert_eq!(baseline_gaps(&base, &cur), None);
        // The candidate grows a series the baseline lacks: typed error
        // naming exactly the missing paths.
        cur.push(("/can1072/jad.synth".to_string(), 650.0));
        match baseline_gaps(&base, &cur) {
            Some(DiffError::BaselineMissingSeries { paths }) => {
                assert_eq!(paths, vec!["/can1072/jad.synth".to_string()]);
            }
            other => panic!("expected BaselineMissingSeries, got {other:?}"),
        }
        // The reverse direction (baseline has more) stays non-fatal.
        let fewer: Vec<(String, f64)> = base
            .iter()
            .filter(|(k, _)| !k.ends_with(".nist_c"))
            .cloned()
            .collect();
        assert_eq!(baseline_gaps(&base, &fewer), None);
        // And the error renders the paths for the CI log.
        let e = baseline_gaps(&base, &cur).unwrap();
        let msg = e.to_string();
        assert!(msg.contains("missing 1 series"));
        assert!(msg.contains("/can1072/jad.synth"));
    }
}
