//! Experiment driver: prints the paper-style tables recorded in
//! EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p bernoulli-bench --bin experiments -- [all|fig12|mvm|join|order|costmodel]`

#![allow(clippy::needless_range_loop, clippy::type_complexity)]
use bernoulli_bench::*;
use bernoulli_blas::handwritten::{spdot_hash, spdot_merge};
use bernoulli_blas::{generic_rhs, handwritten as hw, kernels, parallel, synth};
use bernoulli_formats::{gen, Coo, Csc, Csr, Dia, Ell, HashVec, Jad, SparseMatrix, SparseVec};
use bernoulli_synth::{run_plan, synthesize_all, ExecEnv, SynthOptions};
use std::hint::black_box;

const REPS: usize = 12;
const ROUNDS: usize = 8;

/// Noise-robust timing for the comparison tables.
fn timeit(f: impl FnMut()) -> f64 {
    time_best_of(ROUNDS, REPS, f)
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match what.as_str() {
        "fig12" => fig12(),
        "mvm" => mvm(),
        "join" => join(),
        "order" => order(),
        "costmodel" => costmodel(),
        "all" => {
            fig12();
            mvm();
            join();
            order();
            costmodel();
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(1);
        }
    }
}

/// E1/E2 — Figs. 12/13: TS on can_1072, CSR/CSC/JAD ×
/// {synth, nist_c, nist_f}.
fn fig12() {
    println!("== E1/E2 (Figs. 12-13): triangular solve, can_1072-like, MFLOP/s ==");
    let l = can1072_lower();
    let n = l.nrows();
    let nnz = l.nnz();
    let b0 = gen::dense_vector(n, 42);
    let flops = ts_flops(nnz);

    let csr = Csr::from_triplets(&l);
    let csc = Csc::from_triplets(&l);
    let jad = Jad::from_triplets(&l);

    let mut rows = Vec::new();
    rows.push((
        "csr",
        vec![
            ("synth".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    synth::ts_csr(n as i64, black_box(&csr), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_c".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    hw::ts_csr(black_box(&csr), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_f".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    generic_rhs::ts_csr_multi(black_box(&csr), &mut b, 1);
                    black_box(b);
                });
                mflops(flops, t)
            }),
        ],
    ));
    rows.push((
        "csc",
        vec![
            ("synth".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    synth::ts_csc(n as i64, black_box(&csc), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_c".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    hw::ts_csc(black_box(&csc), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_f".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    generic_rhs::ts_csc_multi(black_box(&csc), &mut b, 1);
                    black_box(b);
                });
                mflops(flops, t)
            }),
        ],
    ));
    rows.push((
        "jad",
        vec![
            ("synth".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    synth::ts_jad(n as i64, black_box(&jad), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_c".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    hw::ts_jad(black_box(&jad), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_f".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    generic_rhs::ts_jad_multi(black_box(&jad), &mut b, 1);
                    black_box(b);
                });
                mflops(flops, t)
            }),
        ],
    ));
    for (fmt, cells) in rows {
        print_row(&format!("ts/{fmt}"), &cells);
    }
    println!();
}

/// E3 — MVM across formats on several inputs.
fn mvm() {
    println!("== E3: MVM across formats, MFLOP/s (synth | nist_c) ==");
    let mut inputs = vec![("can1072", can1072())];
    inputs.extend(extra_inputs());
    for (label, t) in inputs {
        let (m, n) = (t.nrows(), t.ncols());
        let nnz = t.nnz();
        let flops = mvm_flops(nnz);
        let x = gen::dense_vector(n, 7);
        let csr = Csr::from_triplets(&t);
        let csc = Csc::from_triplets(&t);
        let coo = Coo::from_triplets(&t);
        let dia = Dia::from_triplets(&t);
        let ell = Ell::from_triplets(&t);
        let jad = Jad::from_triplets(&t);
        // DIA stores padding; account its own nnz for fairness notes.
        let dia_nnz = bernoulli_formats::SparseMatrix::nnz(&dia);

        macro_rules! cell {
            ($synth:path, $hand:path, $mat:ident) => {{
                let ts = timeit(|| {
                    let mut y = vec![0.0; m];
                    $synth(m as i64, n as i64, black_box(&$mat), &x, &mut y);
                    black_box(y);
                });
                let th = timeit(|| {
                    let mut y = vec![0.0; m];
                    $hand(black_box(&$mat), &x, &mut y);
                    black_box(y);
                });
                (mflops(flops, ts), mflops(flops, th))
            }};
        }

        let (s1, h1) = cell!(synth::mvm_csr, hw::mvm_csr, csr);
        let (s2, h2) = cell!(synth::mvm_csc, hw::mvm_csc, csc);
        let (s3, h3) = cell!(synth::mvm_coo, hw::mvm_coo, coo);
        let (s4, h4) = cell!(synth::mvm_dia, hw::mvm_dia, dia);
        let (s5, h5) = cell!(synth::mvm_ell, hw::mvm_ell, ell);
        let (s6, h6) = cell!(synth::mvm_jad, hw::mvm_jad, jad);
        let tp = timeit(|| {
            let mut y = vec![0.0; m];
            parallel::par_mvm_csr(black_box(&csr), &x, &mut y, 4);
            black_box(y);
        });

        println!(
            "{label:<14} nnz={nnz} (dia stores {dia_nnz})\n  csr {s1:8.1} | {h1:8.1}   csc {s2:8.1} | {h2:8.1}   coo {s3:8.1} | {h3:8.1}\n  dia {s4:8.1} | {h4:8.1}   ell {s5:8.1} | {h5:8.1}   jad {s6:8.1} | {h6:8.1}\n  csr-parallel(4): {:8.1}",
            mflops(flops, tp)
        );
    }
    println!();
}

/// E4 — join strategies for the sparse dot product.
fn join() {
    println!("== E4: sparse dot join strategies, time per op (us) ==");
    let n = 1_000_000;
    let big = 100_000;
    let ya = gen::sparse_vector(n, big, 2);
    let ys = SparseVec::from_pairs(n, &ya);
    let yh = HashVec::from_pairs(n, &ya);
    for small in [100usize, 1_000, 10_000, 100_000] {
        let xa = gen::sparse_vector(n, small, 1);
        let x = SparseVec::from_pairs(n, &xa);
        let tm = timeit(|| {
            black_box(spdot_merge(black_box(&x), black_box(&ys)));
        });
        let th = timeit(|| {
            black_box(spdot_hash(black_box(&x), black_box(&yh)));
        });
        let tsearch = timeit(|| {
            let mut acc = 0.0;
            for (k, &i) in x.ind.iter().enumerate() {
                if let Some(p) = ys.find(i) {
                    acc += x.values[k] * ys.values[p];
                }
            }
            black_box(acc);
        });
        println!(
            "|x|={small:<8} merge={:10.1}  hash={:10.1}  search={:10.1}",
            tm * 1e6,
            th * 1e6,
            tsearch * 1e6
        );
    }
    println!();
}

/// E5 — data-centric vs iteration-centric.
fn order() {
    println!("== E5: data-centric vs iteration-centric CSR MVM ==");
    let t = can1072();
    let a = Csr::from_triplets(&t);
    let x = gen::dense_vector(1072, 3);
    let td = timeit(|| {
        let mut y = vec![0.0; 1072];
        hw::mvm_csr(black_box(&a), &x, &mut y);
        black_box(y);
    });
    let ti = time_median(5, || {
        let mut y = vec![0.0; 1072];
        for i in 0..a.nrows {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                acc += a.get(i, j) * xj;
            }
            y[i] += acc;
        }
        black_box(y);
    });
    println!(
        "data-centric {:.1} us, iteration-centric {:.1} us, speedup {:.0}x (fill ratio n^2/nnz = {:.0})",
        td * 1e6,
        ti * 1e6,
        ti / td,
        (1072.0 * 1072.0) / t.nnz() as f64
    );
    println!();
}

/// E6 — cost-model validation: estimated cost rank vs measured runtime
/// rank over all legal candidates (TS/JAD).
fn costmodel() {
    println!("== E6: cost model validation (TS on JAD, all candidates) ==");
    let spec = kernels::ts();
    let view = bernoulli_blas::synth::view_for("ts", "jad");
    let stats = bernoulli_synth::WorkloadStats::default()
        .with_param("N", 400.0)
        .with_matrix("L", 400.0, 400.0, 2600.0);
    let opts = SynthOptions {
        stats,
        keep: 64,
        ..SynthOptions::default()
    };
    let (cands, examined, _) = synthesize_all(&spec, &[("L", view)], &opts).unwrap();
    println!("candidates: {} (examined {examined})", cands.len());

    let t = gen::structurally_symmetric(400, 2600, 16, 9).lower_triangle_full_diag(1.0);
    let jad = Jad::from_triplets(&t);
    let b0 = gen::dense_vector(400, 4);

    let mut measured: Vec<(usize, f64, f64)> = Vec::new();
    for (i, cand) in cands.iter().enumerate() {
        let time = time_median(5, || {
            let mut env = ExecEnv::new();
            env.set_param("N", 400);
            env.bind_vec("b", b0.clone());
            env.bind_sparse("L", &jad);
            run_plan(&cand.plan, &mut env).unwrap();
            black_box(env.take_vec("b"));
        });
        measured.push((i, cand.cost, time));
    }
    // Spearman rank correlation between cost and time.
    let rho = spearman(
        &measured.iter().map(|m| m.1).collect::<Vec<_>>(),
        &measured.iter().map(|m| m.2).collect::<Vec<_>>(),
    );
    for (i, cost, time) in &measured {
        println!("  cand {i:>2}: est cost {cost:>12.0}  measured {:>9.1} us", time * 1e6);
    }
    println!("Spearman rank correlation (cost vs time): {rho:.2}");
    println!();
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    // Fractional (average) ranks for ties, so equal-cost candidates do
    // not penalize the correlation by arbitrary ordering.
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap());
        let mut r = vec![0.0; v.len()];
        let mut pos = 0;
        while pos < idx.len() {
            let mut end = pos;
            while end + 1 < idx.len() && v[idx[end + 1]] == v[idx[pos]] {
                end += 1;
            }
            let avg = (pos + end) as f64 / 2.0;
            for &i in &idx[pos..=end] {
                r[i] = avg;
            }
            pos = end + 1;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = a.len() as f64;
    if n < 2.0 {
        return 1.0;
    }
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..a.len() {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    num / (da.sqrt() * db.sqrt()).max(1e-12)
}
