//! Experiment driver: prints the paper-style tables recorded in
//! EXPERIMENTS.md, and writes each table as machine-readable
//! `BENCH_<experiment>.json` in the working directory.
//!
//! Usage: `cargo run --release -p bernoulli-bench --bin experiments -- [all|fig12|mvm|join|order|costmodel|advisor|parallel|trace|synth|kernels|service|blocked]`
//!
//! `trace` exercises the synthesis pipeline and the parallel runtime
//! under the observability layer and writes `BENCH_trace.json`. It
//! always emits workload-derived series; compiling with
//! `--features trace` adds the instrumented counters from
//! `bernoulli-trace` (and sets `"trace_feature": true`).
//!
//! `synth` measures the synthesis search itself (S34): sequential vs
//! pool-parallel wall time, warm-cache speedup, polyhedral memo-cache
//! hit rates and branch-and-bound pruning counts over the same five
//! workloads, writing `BENCH_synth.json`.
//!
//! `service` measures the multi-tenant compile service (S38): N
//! concurrent clients × M distinct programs through one shared
//! `Service` (throughput, p50/p99 latency), persistent plan-cache
//! warm-start vs cold compiles, and admission-control shed accounting,
//! writing `BENCH_service.json`.
//!
//! `blocked` measures the blocked performance tier (S39): BSR and VBR
//! vs CSR on synthetic FEM matrices across a dense-block fill sweep,
//! sequential hand-written vs loaded vs parallel, with each blocking's
//! fill-in overhead, writing `BENCH_blocked.json`.
//!
//! `advisor` measures structure-aware selection (S40): `Session::advise`
//! picks a (format, plan) pair per instance from measured structure,
//! scored here as chosen-vs-best *regret* against interpreted kernel
//! times over every candidate, on a small (~1k-row) and a large
//! (≥10^5-row, via `gen::scale`) tier, writing `BENCH_advisor.json`.

#![allow(clippy::needless_range_loop, clippy::type_complexity)]
use bernoulli_bench::report::{obj, Json};
use bernoulli_bench::*;
use bernoulli_blas::handwritten::{spdot_hash, spdot_merge};
use bernoulli_blas::{generic_rhs, handwritten as hw, kernels, par, parallel, solvers, synth};
use bernoulli_formats::{
    block_fill, discover_strips, gen, Bsr, Coo, Csc, Csr, Dia, Ell, HashVec, Jad, SparseMatrix,
    SparseVec, SparseView, Vbr,
};
use bernoulli_synth::{ExecEnv, Session, SynthOptions};
use std::hint::black_box;

const REPS: usize = 12;
const ROUNDS: usize = 8;

/// Noise-robust timing for the comparison tables.
fn timeit(f: impl FnMut()) -> f64 {
    time_best_of(ROUNDS, REPS, f)
}

fn main() {
    // The global pool is created on first parallel call and sized from
    // BERNOULLI_THREADS; default it to the widest granularity the
    // `parallel` experiment tests, before anything can create the pool,
    // so every chunk can get a lane on machines with enough cores.
    if std::env::var(par::THREADS_ENV).is_err() {
        std::env::set_var(par::THREADS_ENV, "8");
    }
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match what.as_str() {
        "fig12" => fig12(),
        "mvm" => mvm(),
        "join" => join(),
        "order" => order(),
        "costmodel" => costmodel(),
        "advisor" => advisor(),
        "parallel" => parallel_scaling(),
        "trace" => trace(),
        "synth" => synth_perf(),
        "kernels" => kernels(),
        "service" => service_perf(),
        "blocked" => blocked(),
        "all" => {
            fig12();
            mvm();
            join();
            order();
            costmodel();
            advisor();
            parallel_scaling();
            trace();
            synth_perf();
            kernels();
            service_perf();
            blocked();
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!(
                "usage: experiments [all|fig12|mvm|join|order|costmodel|advisor|parallel|trace|synth|kernels|service|blocked]"
            );
            std::process::exit(1);
        }
    }
}

/// E1/E2 — Figs. 12/13: TS on can_1072, CSR/CSC/JAD ×
/// {synth, nist_c, nist_f}.
fn fig12() {
    println!("== E1/E2 (Figs. 12-13): triangular solve, can_1072-like, MFLOP/s ==");
    let l = can1072_lower();
    let n = l.nrows();
    let nnz = l.nnz();
    let b0 = gen::dense_vector(n, 42);
    let flops = ts_flops(nnz);

    let csr = Csr::from_triplets(&l);
    let csc = Csc::from_triplets(&l);
    let jad = Jad::from_triplets(&l);

    let mut rows = Vec::new();
    rows.push((
        "csr",
        vec![
            ("synth".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    synth::ts_csr(n as i64, black_box(&csr), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_c".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    hw::ts_csr(black_box(&csr), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_f".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    generic_rhs::ts_csr_multi(black_box(&csr), &mut b, 1);
                    black_box(b);
                });
                mflops(flops, t)
            }),
        ],
    ));
    rows.push((
        "csc",
        vec![
            ("synth".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    synth::ts_csc(n as i64, black_box(&csc), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_c".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    hw::ts_csc(black_box(&csc), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_f".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    generic_rhs::ts_csc_multi(black_box(&csc), &mut b, 1);
                    black_box(b);
                });
                mflops(flops, t)
            }),
        ],
    ));
    rows.push((
        "jad",
        vec![
            ("synth".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    synth::ts_jad(n as i64, black_box(&jad), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_c".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    hw::ts_jad(black_box(&jad), &mut b);
                    black_box(b);
                });
                mflops(flops, t)
            }),
            ("nist_f".to_string(), {
                let t = timeit(|| {
                    let mut b = b0.clone();
                    generic_rhs::ts_jad_multi(black_box(&jad), &mut b, 1);
                    black_box(b);
                });
                mflops(flops, t)
            }),
        ],
    ));
    for (fmt, cells) in &rows {
        print_row(&format!("ts/{fmt}"), cells);
    }
    report::write(
        "BENCH_fig12.json",
        &obj(vec![
            ("experiment", Json::str("fig12")),
            ("kernel", Json::str("ts")),
            ("input", Json::str("can_1072-like")),
            ("n", Json::num(n as f64)),
            ("nnz", Json::num(nnz as f64)),
            ("unit", Json::str("MFLOP/s")),
            (
                "rows",
                Json::Arr(
                    rows.iter()
                        .map(|(fmt, cells)| {
                            let mut fields = vec![("format", Json::str(*fmt))];
                            for (name, v) in cells {
                                fields.push((name.as_str(), Json::num(*v)));
                            }
                            Json::Obj(
                                fields
                                    .into_iter()
                                    .map(|(k, v)| (k.to_string(), v))
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
        ]),
    );
    println!();
}

/// E3 — MVM across formats on several inputs.
fn mvm() {
    println!("== E3: MVM across formats, MFLOP/s (synth | nist_c) ==");
    let mut inputs = vec![("can1072", can1072())];
    inputs.extend(extra_inputs());
    let mut json_inputs = Vec::new();
    for (label, t) in inputs {
        let (m, n) = (t.nrows(), t.ncols());
        let nnz = t.nnz();
        let flops = mvm_flops(nnz);
        let x = gen::dense_vector(n, 7);
        let csr = Csr::from_triplets(&t);
        let csc = Csc::from_triplets(&t);
        let coo = Coo::from_triplets(&t);
        let dia = Dia::from_triplets(&t);
        let ell = Ell::from_triplets(&t);
        let jad = Jad::from_triplets(&t);
        // DIA stores padding; account its own nnz for fairness notes.
        let dia_nnz = bernoulli_formats::SparseMatrix::nnz(&dia);

        macro_rules! cell {
            ($synth:path, $hand:path, $mat:ident) => {{
                let ts = timeit(|| {
                    let mut y = vec![0.0; m];
                    $synth(m as i64, n as i64, black_box(&$mat), &x, &mut y);
                    black_box(y);
                });
                let th = timeit(|| {
                    let mut y = vec![0.0; m];
                    $hand(black_box(&$mat), &x, &mut y);
                    black_box(y);
                });
                (mflops(flops, ts), mflops(flops, th))
            }};
        }

        let (s1, h1) = cell!(synth::mvm_csr, hw::mvm_csr, csr);
        let (s2, h2) = cell!(synth::mvm_csc, hw::mvm_csc, csc);
        let (s3, h3) = cell!(synth::mvm_coo, hw::mvm_coo, coo);
        let (s4, h4) = cell!(synth::mvm_dia, hw::mvm_dia, dia);
        let (s5, h5) = cell!(synth::mvm_ell, hw::mvm_ell, ell);
        let (s6, h6) = cell!(synth::mvm_jad, hw::mvm_jad, jad);
        let tp = timeit(|| {
            let mut y = vec![0.0; m];
            parallel::par_mvm_csr(black_box(&csr), &x, &mut y, 4);
            black_box(y);
        });

        println!(
            "{label:<14} nnz={nnz} (dia stores {dia_nnz})\n  csr {s1:8.1} | {h1:8.1}   csc {s2:8.1} | {h2:8.1}   coo {s3:8.1} | {h3:8.1}\n  dia {s4:8.1} | {h4:8.1}   ell {s5:8.1} | {h5:8.1}   jad {s6:8.1} | {h6:8.1}\n  csr-parallel(4): {:8.1}",
            mflops(flops, tp)
        );
        let fmt_cell = |fmt: &str, s: f64, h: f64| {
            obj(vec![
                ("format", Json::str(fmt)),
                ("synth", Json::num(s)),
                ("nist_c", Json::num(h)),
            ])
        };
        json_inputs.push(obj(vec![
            ("input", Json::str(label)),
            ("nrows", Json::num(m as f64)),
            ("ncols", Json::num(n as f64)),
            ("nnz", Json::num(nnz as f64)),
            ("dia_stored", Json::num(dia_nnz as f64)),
            (
                "formats",
                Json::Arr(vec![
                    fmt_cell("csr", s1, h1),
                    fmt_cell("csc", s2, h2),
                    fmt_cell("coo", s3, h3),
                    fmt_cell("dia", s4, h4),
                    fmt_cell("ell", s5, h5),
                    fmt_cell("jad", s6, h6),
                ]),
            ),
            ("csr_parallel_4", Json::num(mflops(flops, tp))),
        ]));
    }
    report::write(
        "BENCH_mvm.json",
        &obj(vec![
            ("experiment", Json::str("mvm")),
            ("unit", Json::str("MFLOP/s")),
            ("inputs", Json::Arr(json_inputs)),
        ]),
    );
    println!();
}

/// E4 — join strategies for the sparse dot product.
fn join() {
    println!("== E4: sparse dot join strategies, time per op (us) ==");
    let n = 1_000_000;
    let big = 100_000;
    let ya = gen::sparse_vector(n, big, 2);
    let ys = SparseVec::from_pairs(n, &ya);
    let yh = HashVec::from_pairs(n, &ya);
    let mut json_rows = Vec::new();
    for small in [100usize, 1_000, 10_000, 100_000] {
        let xa = gen::sparse_vector(n, small, 1);
        let x = SparseVec::from_pairs(n, &xa);
        let tm = timeit(|| {
            black_box(spdot_merge(black_box(&x), black_box(&ys)));
        });
        let th = timeit(|| {
            black_box(spdot_hash(black_box(&x), black_box(&yh)));
        });
        let tsearch = timeit(|| {
            let mut acc = 0.0;
            for (k, &i) in x.ind.iter().enumerate() {
                if let Some(p) = ys.find(i) {
                    acc += x.values[k] * ys.values[p];
                }
            }
            black_box(acc);
        });
        println!(
            "|x|={small:<8} merge={:10.1}  hash={:10.1}  search={:10.1}",
            tm * 1e6,
            th * 1e6,
            tsearch * 1e6
        );
        json_rows.push(obj(vec![
            ("x_nnz", Json::num(small as f64)),
            ("merge_us", Json::num(tm * 1e6)),
            ("hash_us", Json::num(th * 1e6)),
            ("search_us", Json::num(tsearch * 1e6)),
        ]));
    }
    report::write(
        "BENCH_join.json",
        &obj(vec![
            ("experiment", Json::str("join")),
            ("n", Json::num(n as f64)),
            ("y_nnz", Json::num(big as f64)),
            ("unit", Json::str("us per op")),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
    println!();
}

/// E5 — data-centric vs iteration-centric.
fn order() {
    println!("== E5: data-centric vs iteration-centric CSR MVM ==");
    let t = can1072();
    let a = Csr::from_triplets(&t);
    let x = gen::dense_vector(1072, 3);
    let td = timeit(|| {
        let mut y = vec![0.0; 1072];
        hw::mvm_csr(black_box(&a), &x, &mut y);
        black_box(y);
    });
    // The iteration-centric loop is ~10^3 slower; keep its run count low
    // but stay on the shared best-of-medians helper.
    let ti = time_best_of(2, 2, || {
        let mut y = vec![0.0; 1072];
        for i in 0..a.nrows {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                acc += a.get(i, j) * xj;
            }
            y[i] += acc;
        }
        black_box(y);
    });
    println!(
        "data-centric {:.1} us, iteration-centric {:.1} us, speedup {:.0}x (fill ratio n^2/nnz = {:.0})",
        td * 1e6,
        ti * 1e6,
        ti / td,
        (1072.0 * 1072.0) / t.nnz() as f64
    );
    report::write(
        "BENCH_order.json",
        &obj(vec![
            ("experiment", Json::str("order")),
            ("input", Json::str("can_1072-like")),
            ("data_centric_us", Json::num(td * 1e6)),
            ("iteration_centric_us", Json::num(ti * 1e6)),
            ("speedup", Json::num(ti / td)),
            ("fill_ratio", Json::num((1072.0 * 1072.0) / t.nnz() as f64)),
        ]),
    );
    println!();
}

/// E6 — cost-model validation: estimated cost rank vs measured runtime
/// rank over all legal candidates (TS/JAD).
fn costmodel() {
    println!("== E6: cost model validation (TS on JAD, all candidates) ==");
    let spec = kernels::ts();
    let view = bernoulli_blas::synth::view_for("ts", "jad");
    // Stats are derived from the actual instance the candidates will be
    // measured on — the cost model sees what the interpreter sees.
    let t = gen::structurally_symmetric(400, 2600, 16, 9).lower_triangle_full_diag(1.0);
    let stats = bernoulli_synth::WorkloadStats::from_features(&[(
        "L",
        &bernoulli_formats::StructureFeatures::of_triplets(&t),
    )]);
    let opts = SynthOptions {
        stats,
        keep: 64,
        ..SynthOptions::default()
    };
    let session = Session::with_options(opts);
    let kernel = session
        .compile(&session.bind(&spec, &[("L", view)]).unwrap())
        .unwrap();
    let cands = kernel.candidates();
    let examined = kernel.report().examined;
    println!("candidates: {} (examined {examined})", cands.len());

    let jad = Jad::from_triplets(&t);
    let b0 = gen::dense_vector(400, 4);

    let mut measured: Vec<(usize, f64, f64)> = Vec::new();
    for (i, cand) in cands.iter().enumerate() {
        let time = time_best_of(2, 3, || {
            let mut env = ExecEnv::new();
            env.set_param("N", 400);
            env.bind_vec("b", b0.clone());
            env.bind_sparse("L", &jad);
            kernel.interpret_candidate(i, &mut env).unwrap();
            black_box(env.take_vec("b"));
        });
        measured.push((i, cand.cost, time));
    }
    // Spearman rank correlation between cost and time.
    let rho = spearman(
        &measured.iter().map(|m| m.1).collect::<Vec<_>>(),
        &measured.iter().map(|m| m.2).collect::<Vec<_>>(),
    );
    for (i, cost, time) in &measured {
        println!(
            "  cand {i:>2}: est cost {cost:>12.0}  measured {:>9.1} us",
            time * 1e6
        );
    }
    println!("Spearman rank correlation (cost vs time): {rho:.2}");
    report::write(
        "BENCH_costmodel.json",
        &obj(vec![
            ("experiment", Json::str("costmodel")),
            ("kernel", Json::str("ts/jad")),
            ("candidates", Json::num(cands.len() as f64)),
            ("examined", Json::num(examined as f64)),
            ("spearman_rho", Json::num(rho)),
            (
                "measurements",
                Json::Arr(
                    measured
                        .iter()
                        .map(|(i, cost, time)| {
                            obj(vec![
                                ("candidate", Json::num(*i as f64)),
                                ("est_cost", Json::num(*cost)),
                                ("measured_us", Json::num(time * 1e6)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
    println!();
}

/// S40 — structure-aware advisor: `Session::advise` derives the cost
/// model's statistics from the instance and picks a (format, plan)
/// pair; this lane scores the pick against *measured* interpreted
/// kernel times over every candidate, reporting chosen-vs-best regret
/// on a small tier (~1k-row inputs) and a large tier (≥10^5 rows via
/// `gen::scale`). Writes `BENCH_advisor.json`; `small_max_regret` is
/// the CI-gated headline (`ci/advisor_gate.sh`).
fn advisor() {
    println!("== S40: structure-aware advisor, chosen-vs-best regret (BENCH_advisor.json) ==");
    let spec = kernels::mvm();
    let session = Session::new();

    let mut small: Vec<(String, bernoulli_formats::Triplets<f64>)> =
        vec![("can1072".to_string(), can1072())];
    for (name, t) in extra_inputs() {
        small.push((name.to_string(), t));
    }
    small.push(("tridiag_1000".to_string(), gen::tridiagonal(1000)));
    small.push((
        "fem_256_b4".to_string(),
        gen::fem_blocked(256, 4, 3, 1.0, 13),
    ));
    let large: Vec<(String, bernoulli_formats::Triplets<f64>)> = vec![
        ("can1072_x100".to_string(), gen::scale(&can1072(), 100, 40)),
        (
            "poisson2d_32_x100".to_string(),
            gen::scale(&gen::poisson2d(32), 100, 41),
        ),
    ];

    let run_tier = |tier: &str,
                    inputs: &[(String, bernoulli_formats::Triplets<f64>)],
                    rounds: usize,
                    reps: usize|
     -> (Json, f64, f64) {
        let mut rows = Vec::new();
        let mut picked = 0usize;
        let mut max_regret: f64 = 0.0;
        let mut sum_regret = 0.0;
        for (input, t) in inputs {
            let advice = session
                .advise(&spec, "A", t, &[])
                .unwrap_or_else(|e| panic!("{tier}/{input}: advise failed: {e}"));
            let (nr, nc, nnz) = (t.nrows(), t.ncols(), t.nnz());
            let x = gen::dense_vector(nc, 7);
            // Measure every scored candidate on its actual format.
            let mut measured: Vec<(String, f64, f64)> = Vec::new();
            for e in &advice.ranked {
                let f = bernoulli_formats::AnyFormat::<f64>::try_from_triplets(&e.format, t)
                    .unwrap_or_else(|err| panic!("{input}/{}: {err}", e.format));
                let time = time_best_of(rounds, reps, || {
                    let mut env = ExecEnv::new();
                    env.set_param("M", nr as i64).set_param("N", nc as i64);
                    env.bind_sparse("A", f.as_view());
                    env.bind_vec("x", x.clone());
                    env.bind_vec("y", vec![0.0; nr]);
                    e.kernel.interpret(&mut env).unwrap();
                    black_box(env.take_vec("y"));
                });
                measured.push((e.format.clone(), e.predicted_cost, time));
            }
            let chosen = &measured[0];
            let best = measured
                .iter()
                .min_by(|a, b| a.2.total_cmp(&b.2))
                .expect("advice.ranked is never empty");
            let regret = chosen.2 / best.2;
            // "Picked best" tolerates measurement noise between formats
            // whose kernels are effectively tied.
            let picked_best = regret <= 1.05;
            picked += picked_best as usize;
            max_regret = max_regret.max(regret);
            sum_regret += regret;
            println!(
                "  [{tier}] {input:<18} n={nr:<7} nnz={nnz:<8} chosen {:<4} \
                 best {:<4} regret {regret:.2}{}",
                chosen.0,
                best.0,
                if picked_best { "" } else { "  (MISS)" }
            );
            rows.push(obj(vec![
                ("input", Json::str(input.as_str())),
                ("nrows", Json::num(nr as f64)),
                ("nnz", Json::num(nnz as f64)),
                ("chosen", Json::str(chosen.0.as_str())),
                ("measured_best", Json::str(best.0.as_str())),
                ("picked_best", Json::Bool(picked_best)),
                ("regret", Json::num(regret)),
                ("chosen_mflops", Json::num(mflops(mvm_flops(nnz), chosen.2))),
                (
                    "formats",
                    Json::Arr(
                        measured
                            .iter()
                            .map(|(fmt, cost, time)| {
                                obj(vec![
                                    ("format", Json::str(fmt.as_str())),
                                    ("predicted_cost", Json::num(*cost)),
                                    ("interp_us", Json::num(time * 1e6)),
                                    ("interp_mflops", Json::num(mflops(mvm_flops(nnz), *time))),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]));
        }
        let n = inputs.len();
        let accuracy = picked as f64 / n.max(1) as f64;
        let tier_json = obj(vec![
            ("name", Json::str(tier)),
            ("rows_count", Json::num(n as f64)),
            ("advisor_accuracy", Json::num(accuracy)),
            ("max_regret", Json::num(max_regret)),
            ("mean_regret", Json::num(sum_regret / n.max(1) as f64)),
            ("rows", Json::Arr(rows)),
        ]);
        (tier_json, accuracy, max_regret)
    };

    let (small_json, small_accuracy, small_max_regret) = run_tier("small", &small, 3, 4);
    let (large_json, large_accuracy, large_max_regret) = run_tier("large", &large, 2, 2);
    let large_min_nrows = large.iter().map(|(_, t)| t.nrows()).min().unwrap_or(0);
    println!(
        "small tier: accuracy {small_accuracy:.2}, max regret {small_max_regret:.2}; \
         large tier (min n = {large_min_nrows}): accuracy {large_accuracy:.2}, \
         max regret {large_max_regret:.2}"
    );
    report::write(
        "BENCH_advisor.json",
        &obj(vec![
            ("experiment", Json::str("advisor")),
            ("workload_kernel", Json::str("mvm")),
            ("small_accuracy", Json::num(small_accuracy)),
            ("small_max_regret", Json::num(small_max_regret)),
            ("large_accuracy", Json::num(large_accuracy)),
            ("large_max_regret", Json::num(large_max_regret)),
            ("large_min_nrows", Json::num(large_min_nrows as f64)),
            ("tiers", Json::Arr(vec![small_json, large_json])),
        ]),
    );
    println!();
}

/// S32 — parallel execution subsystem: each parallel kernel against its
/// sequential counterpart across partition granularities, on the
/// can_1072-like workload. Writes `BENCH_parallel.json`.
fn parallel_scaling() {
    const THREADS: [usize; 4] = [1, 2, 4, 8];
    let lanes = par::Pool::global().nthreads();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("== S32: parallel kernels vs sequential, can_1072-like, MFLOP/s ==");
    println!("pool lanes = {lanes}, host cores = {cores} (speedup is bounded by host cores)");

    let t = can1072();
    let (m, n, nnz) = (t.nrows(), t.ncols(), t.nnz());
    let x = gen::dense_vector(n, 7);
    let xt = gen::dense_vector(m, 8);
    let csr = Csr::from_triplets(&t);
    let csc = Csc::from_triplets(&t);
    let ell = Ell::from_triplets(&t);
    let jad = Jad::from_triplets(&t);
    let dia = Dia::from_triplets(&t);

    let tl = can1072_lower();
    let lnnz = tl.nnz();
    let l = Csr::from_triplets(&tl);
    let sched = par::LevelSchedule::build(&l);
    let b0 = gen::dense_vector(m, 42);

    // Vector ops use a much longer vector so per-call pool overhead
    // does not dominate the measured region.
    let vn = 400_000;
    let vx = gen::dense_vector(vn, 1);
    let vy = gen::dense_vector(vn, 2);

    // CG with tol = 0 runs exactly max_iter iterations — a fixed
    // end-to-end workload (MVM + vector ops per iteration).
    let pt = gen::poisson2d(32);
    let pa = Csr::from_triplets(&pt);
    let pn = pa.nrows;
    let pnnz = pt.nnz();
    let pb = gen::dense_vector(pn, 17);
    const CG_ITERS: usize = 40;
    let cg_flops = CG_ITERS as f64 * (mvm_flops(pnnz) + 10.0 * pn as f64);

    struct Row {
        name: &'static str,
        flops: f64,
        seq: f64,
        par: Vec<(usize, f64)>,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut push =
        |name: &'static str, flops: f64, seq: &mut dyn FnMut(), par: &mut dyn FnMut(usize)| {
            let seq_t = timeit(seq);
            let par_t = THREADS.iter().map(|&th| (th, timeit(|| par(th)))).collect();
            rows.push(Row {
                name,
                flops,
                seq: seq_t,
                par: par_t,
            });
        };

    push(
        "mvm_dia",
        mvm_flops(nnz),
        &mut || {
            let mut y = vec![0.0; m];
            hw::mvm_dia(black_box(&dia), &x, &mut y);
            black_box(y);
        },
        &mut |th| {
            let mut y = vec![0.0; m];
            par::par_mvm_dia(black_box(&dia), &x, &mut y, th);
            black_box(y);
        },
    );
    push(
        "mvm_csr",
        mvm_flops(nnz),
        &mut || {
            let mut y = vec![0.0; m];
            hw::mvm_csr(black_box(&csr), &x, &mut y);
            black_box(y);
        },
        &mut |th| {
            let mut y = vec![0.0; m];
            par::par_mvm_csr(black_box(&csr), &x, &mut y, th);
            black_box(y);
        },
    );
    push(
        "mvm_ell",
        mvm_flops(nnz),
        &mut || {
            let mut y = vec![0.0; m];
            hw::mvm_ell(black_box(&ell), &x, &mut y);
            black_box(y);
        },
        &mut |th| {
            let mut y = vec![0.0; m];
            par::par_mvm_ell(black_box(&ell), &x, &mut y, th);
            black_box(y);
        },
    );
    push(
        "mvm_jad",
        mvm_flops(nnz),
        &mut || {
            let mut y = vec![0.0; m];
            hw::mvm_jad(black_box(&jad), &x, &mut y);
            black_box(y);
        },
        &mut |th| {
            let mut y = vec![0.0; m];
            par::par_mvm_jad(black_box(&jad), &x, &mut y, th);
            black_box(y);
        },
    );
    push(
        "mvm_csc (scatter)",
        mvm_flops(nnz),
        &mut || {
            let mut y = vec![0.0; m];
            hw::mvm_csc(black_box(&csc), &x, &mut y);
            black_box(y);
        },
        &mut |th| {
            let mut y = vec![0.0; m];
            par::par_mvm_csc(black_box(&csc), &x, &mut y, th);
            black_box(y);
        },
    );
    push(
        "mvmt_csr (scatter)",
        mvm_flops(nnz),
        &mut || {
            let mut y = vec![0.0; n];
            hw::mvmt_csr(black_box(&csr), &xt, &mut y);
            black_box(y);
        },
        &mut |th| {
            let mut y = vec![0.0; n];
            par::par_mvmt_csr(black_box(&csr), &xt, &mut y, th);
            black_box(y);
        },
    );
    push(
        "ts_csr (level-sched)",
        ts_flops(lnnz),
        &mut || {
            let mut b = b0.clone();
            hw::ts_csr(black_box(&l), &mut b);
            black_box(b);
        },
        &mut |th| {
            let mut b = b0.clone();
            par::par_ts_csr_scheduled(black_box(&l), &sched, &mut b, th);
            black_box(b);
        },
    );
    push(
        "dot (400k)",
        2.0 * vn as f64,
        &mut || {
            black_box(hw::dot(black_box(&vx), black_box(&vy)));
        },
        &mut |th| {
            black_box(par::par_dot(black_box(&vx), black_box(&vy), th));
        },
    );
    push(
        "axpy (400k)",
        2.0 * vn as f64,
        &mut || {
            let mut y = vy.clone();
            hw::axpy(2.5, black_box(&vx), &mut y);
            black_box(y);
        },
        &mut |th| {
            let mut y = vy.clone();
            par::par_axpy(2.5, black_box(&vx), &mut y, th);
            black_box(y);
        },
    );
    push(
        "cg_csr (40 iters)",
        cg_flops,
        &mut || {
            let mut xs = vec![0.0; pn];
            let mut mv = |v: &[f64], y: &mut [f64]| hw::mvm_csr(&pa, v, y);
            black_box(solvers::cg(&mut mv, &pb, &mut xs, 0.0, CG_ITERS));
            black_box(xs);
        },
        &mut |th| {
            let mut xs = vec![0.0; pn];
            black_box(par::cg_csr(black_box(&pa), &pb, &mut xs, 0.0, CG_ITERS, th));
            black_box(xs);
        },
    );
    let _ = push; // release the closure's mutable borrow of `rows`

    println!(
        "{:<22} {:>10} {}",
        "kernel",
        "seq",
        THREADS
            .map(|t| format!("{:>16}", format!("t={t}")))
            .join("")
    );
    for r in &rows {
        print!("{:<22} {:>10.1}", r.name, mflops(r.flops, r.seq));
        for &(_, pt) in &r.par {
            print!("{:>10.1} {:4.2}x", mflops(r.flops, pt), r.seq / pt);
        }
        println!();
    }
    println!(
        "level schedule: {} levels, avg width {:.1} rows/level",
        sched.nlevels(),
        sched.avg_width()
    );

    report::write(
        "BENCH_parallel.json",
        &obj(vec![
            ("experiment", Json::str("parallel")),
            ("input", Json::str("can_1072-like")),
            ("nrows", Json::num(m as f64)),
            ("nnz", Json::num(nnz as f64)),
            ("pool_lanes", Json::num(lanes as f64)),
            ("host_cores", Json::num(cores as f64)),
            (
                "threads",
                Json::Arr(THREADS.iter().map(|&t| Json::num(t as f64)).collect()),
            ),
            (
                "level_schedule",
                obj(vec![
                    ("nlevels", Json::num(sched.nlevels() as f64)),
                    ("avg_width", Json::num(sched.avg_width())),
                ]),
            ),
            (
                "kernels",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            obj(vec![
                                ("name", Json::str(r.name)),
                                ("flops", Json::num(r.flops)),
                                ("seq_us", Json::num(r.seq * 1e6)),
                                ("seq_mflops", Json::num(mflops(r.flops, r.seq))),
                                (
                                    "par",
                                    Json::Arr(
                                        r.par
                                            .iter()
                                            .map(|&(th, pt)| {
                                                obj(vec![
                                                    ("threads", Json::num(th as f64)),
                                                    ("us", Json::num(pt * 1e6)),
                                                    ("mflops", Json::num(mflops(r.flops, pt))),
                                                    ("speedup", Json::num(r.seq / pt)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
    println!();
}

/// S33 — observability: runs a synthesis sweep and a parallel-runtime
/// sweep, then writes every metric series to `BENCH_trace.json`.
///
/// Two layers of series are emitted:
/// - **computed** — derived from workload structure and search results
///   (plan step kinds, examined/candidate counts, nnz/flops, schedule
///   depth, partition chunk counts); present in every build, so the
///   report has ≥8 series spanning synthesis and runtime even with
///   tracing compiled out;
/// - **series** — the `bernoulli-trace` registry snapshot (embedding
///   rejections, Farkas/emptiness test counts, chunk steals, pool busy
///   time, ...); populated only when built with `--features trace`.
///
/// The five synthesis workloads shared by the `trace` and `synth`
/// experiments: one search per (kernel, format) pair, the join pair
/// exercising both merge and hash-search lowering. The spdot runs carry
/// sparse-vector statistics so the cost model prefers stored-entry
/// enumeration over the dense interval (same steering as
/// `examples/join_strategies.rs`).
fn synth_workloads() -> Vec<(
    &'static str,
    bernoulli_ir::Program,
    Vec<(&'static str, bernoulli_formats::view::FormatView)>,
    SynthOptions,
)> {
    use bernoulli_formats::formats::sparsevec::{hashvec_format_view, sparsevec_format_view};
    use bernoulli_formats::{vector_features, StructureFeatures};
    // Statistics are measured off the actual workload instances (the
    // same generators the runtime sweeps bind), not hand-written: the
    // sparse-vector features steer the cost model to stored-entry
    // enumeration exactly as the old literals did, but stay in sync
    // with the generators by construction.
    let can = gen::can_1072_like();
    let spdot_stats = bernoulli_synth::WorkloadStats::from_features(&[
        (
            "x",
            &vector_features(10_000, &gen::sparse_vector(10_000, 300, 1)),
        ),
        (
            "y",
            &vector_features(10_000, &gen::sparse_vector(10_000, 500, 2)),
        ),
    ]);
    let matrix_stats = bernoulli_synth::WorkloadStats::from_features(&[
        ("A", &StructureFeatures::of_triplets(&can)),
        (
            "L",
            &StructureFeatures::of_triplets(&can.lower_triangle_full_diag(1.0)),
        ),
    ]);
    let with_stats = |stats: &bernoulli_synth::WorkloadStats| SynthOptions {
        stats: stats.clone(),
        ..SynthOptions::default()
    };
    vec![
        (
            "mvm/csr",
            kernels::mvm(),
            vec![("A", synth::view_for("mvm", "csr"))],
            with_stats(&matrix_stats),
        ),
        (
            "ts/csr",
            kernels::ts(),
            vec![("L", synth::view_for("ts", "csr"))],
            with_stats(&matrix_stats),
        ),
        (
            "ts/jad",
            kernels::ts(),
            vec![("L", synth::view_for("ts", "jad"))],
            with_stats(&matrix_stats),
        ),
        (
            "spdot/merge",
            kernels::spdot(),
            vec![
                ("x", sparsevec_format_view()),
                ("y", sparsevec_format_view()),
            ],
            with_stats(&spdot_stats),
        ),
        (
            "spdot/hash",
            kernels::spdot(),
            vec![("x", sparsevec_format_view()), ("y", hashvec_format_view())],
            with_stats(&spdot_stats),
        ),
    ]
}

fn trace() {
    use bernoulli_synth::plan::StepKind;

    println!("== S33: observability trace (BENCH_trace.json) ==");
    bernoulli_trace::reset();

    // --- Synthesis sweep over the shared workloads. ---
    let synth_runs = synth_workloads();
    let mut examined_total = 0usize;
    let mut kept_total = 0usize;
    let (mut join_level, mut join_merge, mut join_interval) = (0usize, 0usize, 0usize);
    let mut per_workload = Vec::new();
    for (label, program, views, opts) in &synth_runs {
        let session = Session::with_options(opts.clone());
        let kernel = session
            .bind(program, views)
            .and_then(|b| session.compile(&b))
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let cands = kernel.candidates();
        let examined = kernel.report().examined;
        examined_total += examined;
        kept_total += cands.len();
        let best = kernel.best();
        let (mut lv, mut mg, mut iv) = (0usize, 0usize, 0usize);
        for step in &best.plan.steps {
            match step.kind {
                StepKind::Level { .. } => lv += 1,
                StepKind::MergeJoin { .. } => mg += 1,
                StepKind::Interval { .. } => iv += 1,
            }
        }
        join_level += lv;
        join_merge += mg;
        join_interval += iv;
        println!(
            "  synth {label:<12} examined={examined:<4} kept={:<3} best steps: level={lv} merge={mg} interval={iv}",
            cands.len()
        );
        per_workload.push(obj(vec![
            ("workload", Json::str(*label)),
            ("examined", Json::num(examined as f64)),
            ("kept", Json::num(cands.len() as f64)),
            ("best_cost", Json::num(best.cost)),
            ("steps_level", Json::num(lv as f64)),
            ("steps_merge_join", Json::num(mg as f64)),
            ("steps_interval", Json::num(iv as f64)),
        ]));
    }

    // --- Runtime sweep: can_1072-like MVM, scheduled TS and a dot
    // product at every partition granularity the equivalence tests
    // use. ---
    const GRANULARITIES: [usize; 5] = [1, 2, 3, 7, 16];
    let t = can1072();
    let (m, n, nnz) = (t.nrows(), t.ncols(), t.nnz());
    let csr = Csr::from_triplets(&t);
    let x = gen::dense_vector(n, 7);
    let tl = can1072_lower();
    let l = Csr::from_triplets(&tl);
    let sched = par::LevelSchedule::build(&l);
    let b0 = gen::dense_vector(m, 42);
    let vn = 100_000;
    let vx = gen::dense_vector(vn, 1);
    let vy = gen::dense_vector(vn, 2);
    let mut mvm_chunks = 0usize;
    for &g in &GRANULARITIES {
        mvm_chunks += csr.partition_rows(g).len() - 1;
        let mut y = vec![0.0; m];
        par::par_mvm_csr(&csr, &x, &mut y, g);
        black_box(y);
        let mut b = b0.clone();
        par::par_ts_csr_scheduled(&l, &sched, &mut b, g);
        black_box(b);
        black_box(par::par_dot(&vx, &vy, g));
    }
    let lanes = par::Pool::global().nthreads();
    println!(
        "  runtime: {} granularities on can_1072-like (nnz={nnz}), schedule {} levels (avg width {:.1}), pool lanes={lanes}",
        GRANULARITIES.len(),
        sched.nlevels(),
        sched.avg_width()
    );

    // Workload-derived series: present in every build.
    let runs = GRANULARITIES.len() as f64;
    let computed: Vec<(&str, f64)> = vec![
        ("synth.workloads", synth_runs.len() as f64),
        ("synth.embeddings_examined", examined_total as f64),
        ("synth.candidates_kept", kept_total as f64),
        ("synth.join.level", join_level as f64),
        ("synth.join.merge", join_merge as f64),
        ("synth.join.interval", join_interval as f64),
        ("par.mvm_csr.calls", runs),
        ("par.mvm_csr.nnz", runs * nnz as f64),
        ("par.mvm_csr.flops", runs * mvm_flops(nnz)),
        ("par.mvm_csr.chunks", mvm_chunks as f64),
        ("par.ts.solves", runs),
        ("par.ts.nnz", runs * tl.nnz() as f64),
        ("par.ts.levels", sched.nlevels() as f64),
        ("par.ts.avg_width", sched.avg_width()),
        ("par.dot.elems", runs * vn as f64),
    ];

    // Instrumented series: empty unless built with `--features trace`.
    let snap = bernoulli_trace::snapshot();
    let find = |name: &str| snap.iter().find(|(k, _)| *k == name).map(|(_, s)| *s);
    let utilization = match (find("par.pool.busy"), find("par.pool.wall")) {
        (Some(busy), Some(wall)) if wall.sum > 0.0 => Some(busy.sum / wall.sum / lanes as f64),
        _ => None,
    };

    println!("  computed series: {}", computed.len());
    if bernoulli_trace::ENABLED {
        println!("  instrumented series: {}", snap.len());
        for (name, s) in &snap {
            println!(
                "    {name:<32} {:<7} count={:<8} sum={:<14.0} max={:.0}",
                s.kind.name(),
                s.count,
                s.sum,
                s.max
            );
        }
        if let Some(u) = utilization {
            println!("  pool utilization (busy/wall/lanes): {:.2}", u);
        }
    } else {
        println!("  instrumented series: 0 (trace feature disabled)");
    }

    report::write(
        "BENCH_trace.json",
        &obj(vec![
            ("experiment", Json::str("trace")),
            ("trace_feature", Json::Bool(bernoulli_trace::ENABLED)),
            ("input", Json::str("can_1072-like")),
            ("nrows", Json::num(m as f64)),
            ("nnz", Json::num(nnz as f64)),
            ("pool_lanes", Json::num(lanes as f64)),
            (
                "granularities",
                Json::Arr(GRANULARITIES.iter().map(|&g| Json::num(g as f64)).collect()),
            ),
            ("synthesis", Json::Arr(per_workload)),
            (
                "computed",
                Json::Arr(
                    computed
                        .iter()
                        .map(|(name, v)| {
                            obj(vec![("name", Json::str(*name)), ("value", Json::num(*v))])
                        })
                        .collect(),
                ),
            ),
            (
                "series",
                Json::Arr(
                    snap.iter()
                        .map(|(name, s)| {
                            obj(vec![
                                ("name", Json::str(*name)),
                                ("kind", Json::str(s.kind.name())),
                                ("count", Json::num(s.count as f64)),
                                ("sum", Json::num(s.sum)),
                                ("max", Json::num(s.max)),
                                ("mean", Json::num(s.mean())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pool_utilization",
                utilization.map_or(Json::Null, Json::num),
            ),
        ]),
    );
    println!();
}

/// S34 — synthesis performance: memoized polyhedral queries, parallel
/// cost-pruned search and the whole-search plan cache, measured over
/// the same five workloads as the trace experiment. Writes
/// `BENCH_synth.json`.
fn synth_perf() {
    println!("== S34: synthesis performance (BENCH_synth.json) ==");
    let lanes = par::Pool::global().nthreads();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("  pool lanes={lanes}, host cores={cores}");

    let workloads = synth_workloads();
    let mut rows = Vec::new();
    let (mut pc_hits, mut pc_misses) = (0u64, 0u64);
    for (label, program, views, base_opts) in &workloads {
        let opts_seq = SynthOptions {
            parallel: false,
            cache_plans: false,
            ..base_opts.clone()
        };
        let opts_par = SynthOptions {
            parallel: true,
            cache_plans: false,
            ..base_opts.clone()
        };

        // A bound problem is session-independent; bind once up front.
        let bound = Session::new().bind(program, views).unwrap();

        // Cold timings: a fresh session per rep starts with empty
        // polyhedral memo caches, so every rep pays the full
        // first-search cost. Plan caching is off so the search actually
        // runs.
        let t_seq = time_best_of(3, 4, || {
            let s = Session::new();
            black_box(s.compile_with(&bound, &opts_seq).unwrap());
        });
        let t_par = time_best_of(3, 4, || {
            let s = Session::new();
            black_box(s.compile_with(&bound, &opts_par).unwrap());
        });
        // Warm polyhedral caches = session reuse: a long-lived session
        // keeps its memos across compiles, so the repeated-synthesis
        // steady state still searches — only the polyhedral answers are
        // memoized.
        let warm_session = Session::new();
        let rep = warm_session
            .compile_with(&bound, &opts_seq)
            .unwrap()
            .report()
            .clone();
        let t_warm = time_best_of(3, 4, || {
            black_box(warm_session.compile_with(&bound, &opts_seq).unwrap());
        });

        // Budget governance overhead (S36): the cold sequential compile
        // with a generous armed budget (op ceiling + far-off deadline)
        // that never trips — every Fourier–Motzkin elimination, Farkas
        // call and search fan-out pays the charge/check path.
        // Cold-vs-cold with an interleaved plain baseline is the clean
        // comparison: a fresh session repeats byte-identical work each
        // rep (warm timings wobble ±20% with memo-shard eviction
        // phase), and alternating the two arms cancels machine-load
        // drift across the run. Stride-amortized clock checks keep the
        // overhead within noise (<2%).
        let (mut t_plain_paired, mut t_budgeted) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            t_plain_paired = t_plain_paired.min(time_best_of(1, 4, || {
                let s = Session::new();
                black_box(s.compile_with(&bound, &opts_seq).unwrap());
            }));
            t_budgeted = t_budgeted.min(time_best_of(1, 4, || {
                let s = Session::new()
                    .with_op_budget(1 << 62)
                    .with_deadline(std::time::Duration::from_secs(3600));
                black_box(s.compile_with(&bound, &opts_seq).unwrap());
            }));
        }
        let budget_overhead = (t_budgeted / t_plain_paired - 1.0) * 100.0;

        // Exhaustion behavior: a starved op budget must still return a
        // plan (degraded to the best-so-far or the baseline fallback
        // unless the whole search fits under the ceiling), and return
        // it quickly — this is the worst-case latency a caller sees.
        let starved_session = Session::new().with_op_budget(100);
        let t0 = std::time::Instant::now();
        let starved = starved_session.compile_with(&bound, &opts_seq).unwrap();
        let t_starved = t0.elapsed().as_secs_f64();
        let starved_rep = starved.report().clone();

        // Intra-search polyhedral hit rate, from a single cold search on
        // a fresh session (its caches saw nothing else).
        let cold = Session::new();
        let rep_par = cold
            .compile_with(&bound, &opts_par)
            .unwrap()
            .report()
            .clone();
        let ps = cold.poly_cache_stats();
        let total_q = (ps.empty_hits + ps.empty_misses + ps.fm_hits + ps.fm_misses).max(1);
        let poly_hit = (ps.empty_hits + ps.fm_hits) as f64 / total_q as f64;

        // Determinism spot-check: the pool-parallel search must return
        // exactly the sequential ranking (the synth_search_parallel
        // suite proves this per pool size; assert it here too so the
        // published numbers compare identical work).
        assert_eq!(rep.examined, rep_par.examined, "{label}: examined diverged");
        assert_eq!(
            rep.candidates.len(),
            rep_par.candidates.len(),
            "{label}: kept diverged"
        );
        for (a, b) in rep.candidates.iter().zip(&rep_par.candidates) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{label}: cost diverged");
        }

        // Branch-and-bound engagement in best-plan mode (keep=1, what
        // `synthesize` needs): once the seed incumbent holds a plan, how
        // many embeddings the admissible floor spares from lowering.
        let opts_k1 = SynthOptions {
            keep: 1,
            parallel: false,
            cache_plans: false,
            ..base_opts.clone()
        };
        let rep1 = warm_session
            .compile_with(&bound, &opts_k1)
            .unwrap()
            .report()
            .clone();
        let rep1_np = warm_session
            .compile_with(
                &bound,
                &SynthOptions {
                    prune: false,
                    ..opts_k1.clone()
                },
            )
            .unwrap()
            .report()
            .clone();
        // Admissibility check: pruning must not change the best plan.
        assert_eq!(
            rep1.candidates.first().map(|c| c.cost.to_bits()),
            rep1_np.candidates.first().map(|c| c.cost.to_bits()),
            "{label}: pruning changed the best candidate"
        );

        // Plan cache: on a reused session, the second identical compile
        // must be a pure lookup.
        let opts_cached = SynthOptions {
            parallel: false,
            cache_plans: true,
            ..base_opts.clone()
        };
        let reused = Session::with_options(opts_cached.clone());
        let first = reused.compile(&bound).unwrap();
        let second = reused.compile(&bound).unwrap();
        assert!(!first.from_cache(), "{label}: first call hit a stale entry");
        assert!(second.from_cache(), "{label}: second call missed");
        let t_cached = time_best_of(3, 32, || {
            black_box(reused.compile(&bound).unwrap());
        });

        // Embedding-lifecycle timings (S35): the full fresh-session cost
        // (construct + bind + compile) against one more compile on the
        // session that already holds the plan.
        let t_fresh = time_best_of(3, 4, || {
            let s = Session::with_options(opts_cached.clone());
            let b = s.bind(program, views).unwrap();
            black_box(s.compile(&b).unwrap());
        });
        let t_reused = time_best_of(3, 32, || {
            let b = reused.bind(program, views).unwrap();
            black_box(reused.compile(&b).unwrap());
        });
        let st = reused.plan_cache_stats();
        pc_hits += st.hits;
        pc_misses += st.misses;

        println!(
            "  {label:<12} seq {:7.2} ms  par {:7.2} ms  warm {:7.2} ms  cached {:7.1} us  fresh-session {:7.2} ms  reused-session {:7.1} us  poly-hit {:5.1}%  pruned(keep=1) {}/{}",
            t_seq * 1e3,
            t_par * 1e3,
            t_warm * 1e3,
            t_cached * 1e6,
            t_fresh * 1e3,
            t_reused * 1e6,
            poly_hit * 100.0,
            rep1.pruned,
            rep1_np.examined,
        );
        println!(
            "  {label:<12} budgeted {:7.2} ms ({:+5.1}% vs seq)  starved(100 ops) {:7.2} ms degraded={} skipped={}",
            t_budgeted * 1e3,
            budget_overhead,
            t_starved * 1e3,
            starved_rep.degraded,
            starved_rep.skipped_configs,
        );

        rows.push(obj(vec![
            ("workload", Json::str(*label)),
            ("examined", Json::num(rep.examined as f64)),
            ("kept", Json::num(rep.candidates.len() as f64)),
            ("seq_ms", Json::num(t_seq * 1e3)),
            ("par_ms", Json::num(t_par * 1e3)),
            ("warm_ms", Json::num(t_warm * 1e3)),
            ("cached_us", Json::num(t_cached * 1e6)),
            ("seq_per_s", Json::num(1.0 / t_seq)),
            ("par_per_s", Json::num(1.0 / t_par)),
            ("warm_per_s", Json::num(1.0 / t_warm)),
            ("budgeted_ms", Json::num(t_budgeted * 1e3)),
            ("budgeted_per_s", Json::num(1.0 / t_budgeted)),
            ("budget_overhead_pct", Json::num(budget_overhead)),
            ("starved_ms", Json::num(t_starved * 1e3)),
            ("starved_degraded", Json::Bool(starved_rep.degraded)),
            (
                "starved_skipped_configs",
                Json::num(starved_rep.skipped_configs as f64),
            ),
            ("session_fresh_ms", Json::num(t_fresh * 1e3)),
            ("session_reused_us", Json::num(t_reused * 1e6)),
            ("session_fresh_per_s", Json::num(1.0 / t_fresh)),
            ("session_reused_per_s", Json::num(1.0 / t_reused)),
            ("poly_cache_hit_rate", Json::num(poly_hit)),
            ("poly_empty_hit_rate", Json::num(ps.empty_hit_rate())),
            ("poly_fm_hit_rate", Json::num(ps.fm_hit_rate())),
            ("pruned_keep1", Json::num(rep1.pruned as f64)),
            ("examined_keep1", Json::num(rep1.examined as f64)),
            ("examined_keep1_noprune", Json::num(rep1_np.examined as f64)),
            ("plan_cache_second_hit", Json::Bool(second.from_cache())),
        ]));
    }

    report::write(
        "BENCH_synth.json",
        &obj(vec![
            ("experiment", Json::str("synth")),
            ("pool_lanes", Json::num(lanes as f64)),
            ("host_cores", Json::num(cores as f64)),
            ("workloads", Json::Arr(rows)),
            ("plan_cache_hits", Json::num(pc_hits as f64)),
            ("plan_cache_misses", Json::num(pc_misses as f64)),
        ]),
    );
    println!();
}

/// S38 — the multi-tenant compile service: N concurrent clients × M
/// distinct programs through one shared
/// [`Service`](bernoulli_synth::Service), reporting
/// throughput and latency percentiles per client count; persistent
/// plan-cache warm-start vs cold compile latency per matrix workload;
/// and an admission-control burst with exact shed accounting.
///
/// The persistent-cache directories live under `BERNOULLI_PLAN_CACHE`
/// when set (CI caches that directory across runs, so run N+1 measures
/// a genuine cross-process warm start), else under the system temp dir.
fn service_perf() {
    use bernoulli_synth::{Service, ServiceConfig};
    use std::path::PathBuf;
    use std::sync::Arc;
    use std::time::Instant;

    println!("== S38: multi-tenant compile service (BENCH_service.json) ==");
    let lanes = par::Pool::global().nthreads();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("  pool lanes={lanes}, host cores={cores}");

    let workloads = Arc::new(synth_workloads());

    // Sequential fresh-session baseline: the byte-level reference every
    // concurrent result is checked against.
    let baseline: Vec<String> = workloads
        .iter()
        .map(|(_, p, views, base)| {
            let opts = SynthOptions {
                parallel: true,
                cache_plans: false,
                ..base.clone()
            };
            let s = Session::new();
            let b = s.bind(p, views).unwrap();
            s.compile_with(&b, &opts).unwrap().plan().to_string()
        })
        .collect();

    let percentile = |sorted: &[f64], q: f64| -> f64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    };

    // --- Client sweep: every request is a full search (plan caching
    // off), so the rows measure the service under genuine compile load,
    // not cache lookups. ---
    let mut client_rows = Vec::new();
    let mut determinism_ok = true;
    const ROUNDS_PER_CLIENT: usize = 2;
    for clients in [1usize, 4, 8] {
        // Admission sized to the client count: the sweep measures
        // concurrent compiles over shared caches, not queueing (the
        // admission burst below covers that).
        let svc = Arc::new(Service::new(ServiceConfig {
            max_inflight: clients,
            max_queue: 64,
            ..ServiceConfig::default()
        }));
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for c in 0..clients {
            let svc = Arc::clone(&svc);
            let wl = Arc::clone(&workloads);
            handles.push(std::thread::spawn(move || {
                let mut lat = Vec::new();
                let mut plans = Vec::new();
                for r in 0..ROUNDS_PER_CLIENT {
                    for i in 0..wl.len() {
                        // Rotate per client and round so distinct
                        // searches overlap in flight.
                        let w = (i + c + r) % wl.len();
                        let (_, p, views, base) = &wl[w];
                        let opts = SynthOptions {
                            parallel: true,
                            cache_plans: false,
                            ..base.clone()
                        };
                        let bound = svc.bind(p, views).unwrap();
                        let t = Instant::now();
                        let k = svc.compile_with(&bound, &opts, None).unwrap();
                        lat.push(t.elapsed().as_secs_f64());
                        plans.push((w, k.plan().to_string()));
                    }
                }
                (lat, plans)
            }));
        }
        let mut lats = Vec::new();
        for h in handles {
            let (lat, plans) = h.join().expect("service client thread panicked");
            lats.extend(lat);
            for (w, plan) in plans {
                if plan != baseline[w] {
                    determinism_ok = false;
                }
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        lats.sort_by(|a, b| a.total_cmp(b));
        let n = lats.len();
        let (p50, p99) = (percentile(&lats, 0.50), percentile(&lats, 0.99));
        let thr = n as f64 / wall;
        let stats = svc.stats();
        println!(
            "  clients={clients}  {n:3} compiles in {:6.2} s  {thr:7.1} req/s  p50 {:7.2} ms  p99 {:7.2} ms  peak-inflight {}",
            wall,
            p50 * 1e3,
            p99 * 1e3,
            stats.peak_inflight,
        );
        client_rows.push(obj(vec![
            ("name", Json::str(format!("clients_{clients}"))),
            ("clients", Json::num(clients as f64)),
            ("requests", Json::num(n as f64)),
            ("throughput_per_s", Json::num(thr)),
            ("p50_ms", Json::num(p50 * 1e3)),
            ("p99_ms", Json::num(p99 * 1e3)),
            ("p99_per_s", Json::num(1.0 / p99)),
            ("peak_inflight", Json::num(stats.peak_inflight as f64)),
        ]));
    }

    // Steady state: one pre-warmed service, every request a plan-cache
    // hit — the latency floor of the admission + lookup path.
    {
        let svc = Arc::new(Service::new(ServiceConfig {
            max_inflight: 8,
            max_queue: 64,
            ..ServiceConfig::default()
        }));
        for (_, p, views, base) in workloads.iter() {
            let bound = svc.bind(p, views).unwrap();
            svc.compile_with(&bound, base, None).unwrap();
        }
        const WARM_REQS: usize = 64;
        let clients = 8;
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for c in 0..clients {
            let svc = Arc::clone(&svc);
            let wl = Arc::clone(&workloads);
            handles.push(std::thread::spawn(move || {
                let mut lat = Vec::new();
                for i in 0..WARM_REQS {
                    let (_, p, views, base) = &wl[(i + c) % wl.len()];
                    let bound = svc.bind(p, views).unwrap();
                    let t = Instant::now();
                    let k = svc.compile_with(&bound, base, None).unwrap();
                    assert!(k.from_cache(), "steady-state request missed the cache");
                    lat.push(t.elapsed().as_secs_f64());
                }
                lat
            }));
        }
        let mut lats = Vec::new();
        for h in handles {
            lats.extend(h.join().expect("warm client thread panicked"));
        }
        let wall = t0.elapsed().as_secs_f64();
        lats.sort_by(|a, b| a.total_cmp(b));
        let n = lats.len();
        let (p50, p99) = (percentile(&lats, 0.50), percentile(&lats, 0.99));
        let thr = n as f64 / wall;
        println!(
            "  warm-hits clients={clients}  {n:3} requests  {thr:9.1} req/s  p50 {:7.1} us  p99 {:7.1} us",
            p50 * 1e6,
            p99 * 1e6,
        );
        client_rows.push(obj(vec![
            ("name", Json::str("warm_hits_clients_8")),
            ("clients", Json::num(clients as f64)),
            ("requests", Json::num(n as f64)),
            ("throughput_per_s", Json::num(thr)),
            ("p50_ms", Json::num(p50 * 1e3)),
            ("p99_ms", Json::num(p99 * 1e3)),
            ("p99_per_s", Json::num(1.0 / p99)),
        ]));
    }

    // --- Persistent plan cache: cold search-and-persist vs a
    // restarted service warm-starting from disk. ---
    let persist_base = std::env::var("BERNOULLI_PLAN_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("bernoulli-service-bench"));
    let mut warm_rows = Vec::new();
    for (label, p, views, base) in workloads.iter().filter(|(l, ..)| !l.starts_with("spdot")) {
        let tag = label.replace('/', "-");
        let cold_dir = persist_base.join(format!("cold-{tag}"));
        let (mut t_cold, mut cold_plan) = (f64::INFINITY, String::new());
        for _ in 0..3 {
            // A cleared directory each rep: every cold compile searches
            // and writes the entry from scratch.
            let _ = std::fs::remove_dir_all(&cold_dir);
            let svc = Service::new(ServiceConfig {
                persist_dir: Some(cold_dir.clone()),
                opts: base.clone(),
                ..ServiceConfig::default()
            });
            let bound = svc.bind(p, views).unwrap();
            let t = Instant::now();
            let k = svc.compile(&bound).unwrap();
            t_cold = t_cold.min(t.elapsed().as_secs_f64());
            assert!(!k.report().plan_cache_hit, "{label}: cold compile hit");
            cold_plan = k.plan().to_string();
        }
        let _ = std::fs::remove_dir_all(&cold_dir);

        // The warm directory survives across runs (CI caches it): the
        // populate step itself warm-starts on run N+1.
        let warm_dir = persist_base.join(format!("warm-{tag}"));
        {
            let svc = Service::new(ServiceConfig {
                persist_dir: Some(warm_dir.clone()),
                opts: base.clone(),
                ..ServiceConfig::default()
            });
            let bound = svc.bind(p, views).unwrap();
            svc.compile(&bound).unwrap();
        }
        let (mut t_warm, mut warm_plan, mut disk_hit) = (f64::INFINITY, String::new(), false);
        for _ in 0..5 {
            // A fresh service per rep: empty in-memory caches, so the
            // compile can only be served by the persistent tier.
            let svc = Service::new(ServiceConfig {
                persist_dir: Some(warm_dir.clone()),
                opts: base.clone(),
                ..ServiceConfig::default()
            });
            let bound = svc.bind(p, views).unwrap();
            let t = Instant::now();
            let k = svc.compile(&bound).unwrap();
            t_warm = t_warm.min(t.elapsed().as_secs_f64());
            disk_hit = k.report().plan_cache_disk_hit;
            warm_plan = k.plan().to_string();
        }
        assert_eq!(warm_plan, cold_plan, "{label}: warm-start changed the plan");
        let speedup = t_cold / t_warm;
        println!(
            "  warm-start {label:<12} cold {:7.2} ms  warm {:7.2} ms  speedup {speedup:6.1}x  disk-hit {disk_hit}",
            t_cold * 1e3,
            t_warm * 1e3,
        );
        warm_rows.push(obj(vec![
            ("workload", Json::str(*label)),
            ("cold_ms", Json::num(t_cold * 1e3)),
            ("warm_start_ms", Json::num(t_warm * 1e3)),
            ("warm_vs_cold_speedup", Json::num(speedup)),
            ("disk_hit", Json::Bool(disk_hit)),
            ("deterministic", Json::Bool(warm_plan == cold_plan)),
        ]));
    }

    // --- Admission burst: more clients than slots + queue, with a
    // deadline — typed sheds, and the accounting must be exact. ---
    let burst = 16usize;
    let (max_inflight, max_queue) = (2usize, 2usize);
    let (_, p_mvm, views_mvm, base_mvm) = &workloads[0];
    let svc = Arc::new(Service::new(ServiceConfig {
        max_inflight,
        max_queue,
        opts: SynthOptions {
            parallel: false,
            cache_plans: false,
            ..base_mvm.clone()
        },
        ..ServiceConfig::default()
    }));
    let bound = Arc::new(svc.bind(p_mvm, views_mvm).unwrap());
    let mut handles = Vec::new();
    for _ in 0..burst {
        let svc = Arc::clone(&svc);
        let bound = Arc::clone(&bound);
        let opts = svc.config().opts.clone();
        handles.push(std::thread::spawn(move || {
            svc.compile_with(&bound, &opts, Some(std::time::Duration::from_millis(200)))
                .map(|_| ())
        }));
    }
    for h in handles {
        let _ = h.join().expect("burst client thread panicked");
    }
    let s = svc.stats();
    assert_eq!(s.submitted, burst as u64, "burst accounting");
    assert_eq!(
        s.admitted + s.shed_overloaded + s.shed_deadline,
        s.submitted,
        "admission accounting must be exact: {s:?}"
    );
    assert_eq!(s.completed + s.failed, s.admitted, "{s:?}");
    println!(
        "  burst {burst} @ {max_inflight} slots + {max_queue} queue: completed {}  shed-overloaded {}  shed-deadline {}  peak-inflight {}",
        s.completed, s.shed_overloaded, s.shed_deadline, s.peak_inflight,
    );

    // --- Single-flight coalescing (S41): 16 concurrent cold compiles
    // of ONE plan-cache key. The leader searches once; everyone else
    // coalesces onto its flight or hits the plan cache it published,
    // so the service must report exactly one genuine search. ---
    let sf_clients = 16usize;
    let svc = Arc::new(Service::new(ServiceConfig {
        max_inflight: sf_clients,
        max_queue: sf_clients,
        ..ServiceConfig::default()
    }));
    let bound = Arc::new(svc.bind(p_mvm, views_mvm).unwrap());
    let barrier = Arc::new(std::sync::Barrier::new(sf_clients));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..sf_clients {
        let svc = Arc::clone(&svc);
        let bound = Arc::clone(&bound);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            svc.compile(&bound).unwrap().plan().to_string()
        }));
    }
    let mut sf_plans = Vec::new();
    for h in handles {
        sf_plans.push(h.join().expect("single-flight client panicked"));
    }
    let sf_wall = t0.elapsed().as_secs_f64();
    let coalesced_per_s = sf_clients as f64 / sf_wall.max(1e-9);
    let sf = svc.stats();
    assert_eq!(sf.searches, 1, "one key must cost one search: {sf:?}");
    assert_eq!(sf.completed, sf_clients as u64, "{sf:?}");
    assert!(
        sf_plans.iter().all(|p| *p == sf_plans[0]),
        "coalesced plans diverged"
    );
    println!(
        "  single-flight {sf_clients} clients, 1 key: {:7.1} req/s  searches {}  coalesced {}",
        coalesced_per_s, sf.searches, sf.coalesced,
    );

    assert!(determinism_ok, "concurrent plans diverged from baseline");
    report::write(
        "BENCH_service.json",
        &obj(vec![
            ("experiment", Json::str("service")),
            ("pool_lanes", Json::num(lanes as f64)),
            ("host_cores", Json::num(cores as f64)),
            ("programs", Json::num(workloads.len() as f64)),
            ("clients", Json::Arr(client_rows)),
            ("warm_start", Json::Arr(warm_rows)),
            (
                "admission",
                obj(vec![
                    ("burst", Json::num(burst as f64)),
                    ("max_inflight", Json::num(max_inflight as f64)),
                    ("max_queue", Json::num(max_queue as f64)),
                    ("completed", Json::num(s.completed as f64)),
                    ("failed", Json::num(s.failed as f64)),
                    ("shed_overloaded", Json::num(s.shed_overloaded as f64)),
                    ("shed_deadline", Json::num(s.shed_deadline as f64)),
                    ("peak_inflight", Json::num(s.peak_inflight as f64)),
                ]),
            ),
            ("coalesced_per_s", Json::num(coalesced_per_s)),
            (
                "singleflight",
                obj(vec![
                    ("clients", Json::num(sf_clients as f64)),
                    ("searches", Json::num(sf.searches as f64)),
                    ("coalesced", Json::num(sf.coalesced as f64)),
                    ("completed", Json::num(sf.completed as f64)),
                ]),
            ),
            ("determinism_ok", Json::Bool(determinism_ok)),
        ]),
    );
    println!();
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    // Fractional (average) ranks for ties, so equal-cost candidates do
    // not penalize the correlation by arbitrary ordering.
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap());
        let mut r = vec![0.0; v.len()];
        let mut pos = 0;
        while pos < idx.len() {
            let mut end = pos;
            while end + 1 < idx.len() && v[idx[end + 1]] == v[idx[pos]] {
                end += 1;
            }
            let avg = (pos + end) as f64 / 2.0;
            for &i in &idx[pos..=end] {
                r[i] = avg;
            }
            pos = end + 1;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = a.len() as f64;
    if n < 2.0 {
        return 1.0;
    }
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..a.len() {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    num / (da.sqrt() * db.sqrt()).max(1e-12)
}

/// S37 — the compiled-kernel execution path: runtime-loaded native
/// kernels vs the hand-written baselines, the committed synthesized
/// kernels, and the interpreter, on the E3 inputs; plus warm
/// artifact-cache load latency and the kernel cache counters.
///
/// Without a usable `rustc` on the host the lane is skipped with a
/// notice (the report records `rustc_available: false`) — never an
/// error, mirroring the library's typed interpreter fallback.
fn kernels() {
    use bernoulli_synth::{KernelArg, KernelStore};
    println!("== S37: compiled-kernel path, MFLOP/s (loaded | hand | committed | interp) ==");
    if let Err(e) = bernoulli_synth::rustc_info() {
        println!("  NOTICE: skipping loaded-kernel lane: {e}");
        report::write(
            "BENCH_kernels.json",
            &obj(vec![
                ("experiment", Json::str("kernels")),
                ("rustc_available", Json::Bool(false)),
                ("notice", Json::str(format!("{e}"))),
            ]),
        );
        println!();
        return;
    }
    bernoulli_synth::kernel_cache_stats_reset();
    let store = KernelStore::default_store();
    let session = Session::new();
    let mut json_inputs = Vec::new();

    let mut inputs = vec![("can1072", can1072())];
    inputs.extend(extra_inputs());
    for (label, t) in inputs {
        let (m, n) = (t.nrows(), t.ncols());
        let flops = mvm_flops(t.nnz());
        let x = gen::dense_vector(n, 7);
        let csr = Csr::from_triplets(&t);
        let ell = Ell::from_triplets(&t);
        let mut rows = Vec::new();

        macro_rules! lane {
            ($fmt:literal, $mat:ident, $argctor:path, $synth:path, $hand:path, $parf:path) => {{
                let (p, mat_name) = synth::spec_for("mvm");
                let bound = session
                    .bind(&p, &[(mat_name, synth::view_for("mvm", $fmt))])
                    .expect("bind");
                let k = session.compile(&bound).expect("compile");
                let loaded = k.load_in(&store).expect("load");
                let params = [m as i64, n as i64];
                let tl = timeit(|| {
                    let mut y = vec![0.0; m];
                    let mut args = [
                        $argctor(black_box(&$mat)),
                        KernelArg::In(&x),
                        KernelArg::Out(&mut y),
                    ];
                    loaded.run(&params, &mut args).expect("run");
                    black_box(y);
                });
                let th = timeit(|| {
                    let mut y = vec![0.0; m];
                    $hand(black_box(&$mat), &x, &mut y);
                    black_box(y);
                });
                let tc = timeit(|| {
                    let mut y = vec![0.0; m];
                    $synth(m as i64, n as i64, black_box(&$mat), &x, &mut y);
                    black_box(y);
                });
                let interp_backend = bernoulli_synth::KernelBackend::Interpreted {
                    reason: bernoulli_synth::LoadError::Emit(bernoulli_synth::EmitError(
                        "benchmark lane".into(),
                    )),
                };
                let ti = time_median(REPS, || {
                    let mut y = vec![0.0; m];
                    let mut args = [
                        $argctor(black_box(&$mat)),
                        KernelArg::In(&x),
                        KernelArg::Out(&mut y),
                    ];
                    k.run_with(&interp_backend, &params, &mut args).expect("interp");
                    black_box(y);
                });
                let tp = timeit(|| {
                    let mut y = vec![0.0; m];
                    $parf(&loaded, black_box(&$mat), &x, &mut y, 4).expect("par");
                    black_box(y);
                });
                println!(
                    "{label:<14} mvm/{:<4} loaded {:8.1} | hand {:8.1} | committed {:8.1} | interp {:8.1} | par(4) {:8.1}",
                    $fmt,
                    mflops(flops, tl),
                    mflops(flops, th),
                    mflops(flops, tc),
                    mflops(flops, ti),
                    mflops(flops, tp),
                );
                rows.push(obj(vec![
                    ("format", Json::str($fmt)),
                    ("loaded_mflops", Json::num(mflops(flops, tl))),
                    ("hand_mflops", Json::num(mflops(flops, th))),
                    ("committed_mflops", Json::num(mflops(flops, tc))),
                    ("interp_mflops", Json::num(mflops(flops, ti))),
                    ("par_loaded_mflops", Json::num(mflops(flops, tp))),
                    ("loaded_vs_hand", Json::num(th / tl)),
                    ("loaded_vs_interp", Json::num(ti / tl)),
                ]));
            }};
        }
        lane!(
            "csr",
            csr,
            KernelArg::Csr,
            synth::mvm_csr,
            hw::mvm_csr,
            par::par_loaded_mvm_csr
        );
        lane!(
            "ell",
            ell,
            KernelArg::Ell,
            synth::mvm_ell,
            hw::mvm_ell,
            par::par_loaded_mvm_ell
        );

        json_inputs.push(obj(vec![
            ("input", Json::str(label)),
            ("nnz", Json::num(t.nnz() as f64)),
            ("formats", Json::Arr(rows)),
        ]));
    }

    // TS through the loaded path on the evaluation input.
    let l = can1072_lower();
    let nn = l.nrows();
    let tsflops = ts_flops(l.nnz());
    let lcsr = Csr::from_triplets(&l);
    let b0 = gen::dense_vector(nn, 42);
    let (p, mat_name) = synth::spec_for("ts");
    let bound = session
        .bind(&p, &[(mat_name, synth::view_for("ts", "csr"))])
        .expect("bind ts");
    let k = session.compile(&bound).expect("compile ts");
    let loaded = k.load_in(&store).expect("load ts");
    // Interleave the three variants round-by-round (same trick as the
    // S36 budgeted-vs-plain comparison): this lane runs right after the
    // 8-thread par(4) lanes, and turbo recovery over the measurement
    // window would otherwise systematically penalize whichever variant
    // is measured first.
    let (mut tl, mut th, mut tc) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..8 {
        tl = tl.min(time_median(REPS, || {
            let mut b = b0.clone();
            let mut args = [KernelArg::Csr(black_box(&lcsr)), KernelArg::Out(&mut b)];
            loaded.run(&[nn as i64], &mut args).expect("run ts");
            black_box(b);
        }));
        th = th.min(time_median(REPS, || {
            let mut b = b0.clone();
            hw::ts_csr(black_box(&lcsr), &mut b);
            black_box(b);
        }));
        tc = tc.min(time_median(REPS, || {
            let mut b = b0.clone();
            synth::ts_csr(nn as i64, black_box(&lcsr), &mut b);
            black_box(b);
        }));
    }
    println!(
        "{:<14} ts/csr  loaded {:8.1} | hand {:8.1} | committed {:8.1}",
        "can1072",
        mflops(tsflops, tl),
        mflops(tsflops, th),
        mflops(tsflops, tc)
    );
    let ts_row = obj(vec![
        ("input", Json::str("can1072")),
        ("format", Json::str("ts_csr")),
        ("loaded_mflops", Json::num(mflops(tsflops, tl))),
        ("hand_mflops", Json::num(mflops(tsflops, th))),
        ("committed_mflops", Json::num(mflops(tsflops, tc))),
        ("loaded_vs_hand", Json::num(th / tl)),
    ]);

    // Warm artifact-cache load latency: every artifact above is cached
    // now, so each load is hash + dlopen. The acceptance bar is <1ms.
    let warm = time_median(32, || {
        black_box(k.load_in(&store).expect("warm load"));
    });
    // Differential-validation overhead on the warm path (S41): the
    // `warm` loads above ran with validation on and the artifact
    // already in the per-process validation memo — the steady state.
    // Re-time with validation switched off entirely; the ratio
    // (off / on, higher is better, ~1.0) is the memoized probe's cost
    // and must stay within a few percent of free.
    bernoulli_synth::set_kernel_validation(false);
    let warm_off = time_median(32, || {
        black_box(k.load_in(&store).expect("warm load (validation off)"));
    });
    bernoulli_synth::set_kernel_validation(true);
    let validation_overhead = warm_off / warm.max(1e-9);
    let stats = bernoulli_synth::kernel_cache_stats();
    println!(
        "warm artifact load: {:.1} us (validation off: {:.1} us, overhead ratio {:.3})",
        warm * 1e6,
        warm_off * 1e6,
        validation_overhead
    );
    println!(
        "kernel cache: {} hits, {} misses, {} compiles, {} errors, {} retries, {} corrupt, {} quarantined, {} coalesced",
        stats.hits,
        stats.misses,
        stats.compiles,
        stats.errors,
        stats.retries,
        stats.corrupt,
        stats.quarantined,
        stats.coalesced
    );

    report::write(
        "BENCH_kernels.json",
        &obj(vec![
            ("experiment", Json::str("kernels")),
            ("unit", Json::str("MFLOP/s")),
            ("rustc_available", Json::Bool(true)),
            ("inputs", Json::Arr(json_inputs)),
            ("ts", ts_row),
            ("warm_load_us", Json::num(warm * 1e6)),
            ("warm_load_per_s", Json::num(1.0 / warm.max(1e-9))),
            ("validation_overhead", Json::num(validation_overhead)),
            (
                "kernel_cache",
                obj(vec![
                    ("hits", Json::num(stats.hits as f64)),
                    ("misses", Json::num(stats.misses as f64)),
                    ("compiles", Json::num(stats.compiles as f64)),
                    ("errors", Json::num(stats.errors as f64)),
                    ("retries", Json::num(stats.retries as f64)),
                    ("corrupt", Json::num(stats.corrupt as f64)),
                    ("quarantined", Json::num(stats.quarantined as f64)),
                    ("coalesced", Json::num(stats.coalesced as f64)),
                ]),
            ),
        ]),
    );
    println!();
}

/// S39 — the blocked performance tier: BSR and VBR vs CSR on synthetic
/// FEM matrices across a dense-block fill sweep. For each input and
/// format the lane times the sequential hand-written kernel, the
/// runtime-loaded synthesized kernel, and both parallel drivers (hand
/// and loaded, 8 threads), and records the blocking's fill-in overhead
/// (stored cells vs source nnz). Writes `BENCH_blocked.json`.
fn blocked() {
    use bernoulli_synth::{KernelArg, KernelStore};
    println!("== S39: blocked formats (BSR | VBR | CSR), MFLOP/s ==");
    if let Err(e) = bernoulli_synth::rustc_info() {
        println!("  NOTICE: skipping blocked lane: {e}");
        report::write(
            "BENCH_blocked.json",
            &obj(vec![
                ("experiment", Json::str("blocked")),
                ("rustc_available", Json::Bool(false)),
                ("notice", Json::str(format!("{e}"))),
            ]),
        );
        println!();
        return;
    }
    let store = KernelStore::default_store();
    let session = Session::new();
    let mut json_inputs = Vec::new();
    // Headline accumulators: worst BSR-vs-CSR loaded speedup over the
    // dense rows (fill >= 0.9) — BSR with the generator's block size is
    // what `discover_block_size` selects on these inputs, so it is the
    // blocked tier's actual choice — and worst loaded-vs-hand ratio
    // over every new blocked row (BSR and VBR). The VBR-vs-CSR ratios
    // stay in the per-row data as the fragmentation story: variable
    // strips pay runtime extent reads, so VBR trails CSR on inputs
    // where a fixed block fits.
    let mut dense_vs_csr = f64::INFINITY;
    let mut loaded_vs_hand_min = f64::INFINITY;

    // FEM-style inputs: dense diagonal blocks plus 3 coupling block
    // neighbors per block row, sweeping in-block fill from genuinely
    // blocked (1.0) down to fragmented.
    let cases: [(&str, usize, usize, f64); 5] = [
        ("fem_b4_f1.0", 1536, 4, 1.0),
        ("fem_b4_f0.9", 1536, 4, 0.9),
        ("fem_b4_f0.6", 1536, 4, 0.6),
        ("fem_b2_f1.0", 1536, 2, 1.0),
        ("fem_b2_f0.9", 1536, 2, 0.9),
    ];
    for (ci, &(label, n, block, fill)) in cases.iter().enumerate() {
        let t = gen::fem_blocked(n, block, 3, fill, 11 + ci as u64);
        let flops = mvm_flops(t.nnz());
        let x = gen::dense_vector(n, 7);
        let csr = Csr::from_triplets(&t);
        let bsr = Bsr::from_triplets(&t, block, block);
        let (rp, cp) = discover_strips(&t);
        let vbr = Vbr::from_triplets(&t, &rp, &cp);
        let rep = block_fill(&t, block, block);
        println!(
            "{label:<12} n {n}  nnz {}  {block}x{block} fill {:.2} ({} stored cells)",
            t.nnz(),
            rep.fill,
            rep.stored_cells
        );
        let mut rows = Vec::new();
        let mut csr_tl = 0.0;

        macro_rules! lane {
            ($fmt:literal, $mat:ident, $view:expr, $argctor:path, $hand:path, $parh:path, $parl:path) => {{
                let (p, mat_name) = synth::spec_for("mvm");
                let bound = session.bind(&p, &[(mat_name, $view)]).expect("bind");
                let k = session.compile(&bound).expect("compile");
                let loaded = k.load_in(&store).expect("load");
                let params = [n as i64, n as i64];
                let tl = timeit(|| {
                    let mut y = vec![0.0; n];
                    let mut args = [
                        $argctor(black_box(&$mat)),
                        KernelArg::In(&x),
                        KernelArg::Out(&mut y),
                    ];
                    loaded.run(&params, &mut args).expect("run");
                    black_box(y);
                });
                let th = timeit(|| {
                    let mut y = vec![0.0; n];
                    $hand(black_box(&$mat), &x, &mut y);
                    black_box(y);
                });
                let tph = timeit(|| {
                    let mut y = vec![0.0; n];
                    $parh(black_box(&$mat), &x, &mut y, 8);
                    black_box(y);
                });
                let tpl = timeit(|| {
                    let mut y = vec![0.0; n];
                    $parl(&loaded, black_box(&$mat), &x, &mut y, 8).expect("par");
                    black_box(y);
                });
                // `csr_tl` is still 0.0 while the csr lane itself runs.
                let vs_csr = if csr_tl > 0.0 { csr_tl / tl } else { 1.0 };
                println!(
                    "  mvm/{:<4} hand {:8.1} | loaded {:8.1} | par-hand(8) {:8.1} | par-loaded(8) {:8.1} | vs csr loaded {:5.2}x",
                    $fmt,
                    mflops(flops, th),
                    mflops(flops, tl),
                    mflops(flops, tph),
                    mflops(flops, tpl),
                    vs_csr,
                );
                if $fmt != "csr" {
                    loaded_vs_hand_min = loaded_vs_hand_min.min(th / tl);
                    if $fmt == "bsr" && rep.fill >= 0.9 {
                        dense_vs_csr = dense_vs_csr.min(vs_csr);
                    }
                }
                rows.push(obj(vec![
                    ("format", Json::str($fmt)),
                    ("hand_mflops", Json::num(mflops(flops, th))),
                    ("loaded_mflops", Json::num(mflops(flops, tl))),
                    ("par_hand_mflops", Json::num(mflops(flops, tph))),
                    ("par_loaded_mflops", Json::num(mflops(flops, tpl))),
                    ("loaded_vs_hand", Json::num(th / tl)),
                    ("vs_csr_loaded", Json::num(vs_csr)),
                ]));
                tl
            }};
        }
        csr_tl = lane!(
            "csr",
            csr,
            csr.format_view(),
            KernelArg::Csr,
            hw::mvm_csr,
            par::par_mvm_csr,
            par::par_loaded_mvm_csr
        );
        let _ = csr_tl;
        let _ = lane!(
            "bsr",
            bsr,
            bsr.format_view(),
            KernelArg::Bsr,
            hw::mvm_bsr,
            par::par_mvm_bsr,
            par::par_loaded_mvm_bsr
        );
        let _ = lane!(
            "vbr",
            vbr,
            vbr.format_view(),
            KernelArg::Vbr,
            hw::mvm_vbr,
            par::par_mvm_vbr,
            par::par_loaded_mvm_vbr
        );

        json_inputs.push(obj(vec![
            ("input", Json::str(label)),
            ("n", Json::num(n as f64)),
            ("block", Json::num(block as f64)),
            ("fill_target", Json::num(fill)),
            ("nnz", Json::num(t.nnz() as f64)),
            (
                "fill_report",
                obj(vec![
                    ("r", Json::num(rep.r as f64)),
                    ("c", Json::num(rep.c as f64)),
                    ("fill", Json::num(rep.fill)),
                    ("stored_cells", Json::num(rep.stored_cells as f64)),
                    (
                        "overhead",
                        Json::num(rep.stored_cells as f64 / rep.source_nnz.max(1) as f64),
                    ),
                ]),
            ),
            ("formats", Json::Arr(rows)),
        ]));
    }
    println!(
        "headline: dense-block (fill >= 0.9) bsr vs csr loaded min {dense_vs_csr:.2}x | blocked loaded vs hand min {loaded_vs_hand_min:.2}x"
    );

    report::write(
        "BENCH_blocked.json",
        &obj(vec![
            ("experiment", Json::str("blocked")),
            ("unit", Json::str("MFLOP/s")),
            ("rustc_available", Json::Bool(true)),
            ("inputs", Json::Arr(json_inputs)),
            (
                "headline",
                obj(vec![
                    ("dense_bsr_vs_csr_loaded_min", Json::num(dense_vs_csr)),
                    ("blocked_loaded_vs_hand_min", Json::num(loaded_vs_hand_min)),
                ]),
            ),
        ]),
    );
    println!();
}
