//! Micro-probe: isolate the cost difference between generated and
//! handwritten TS/CSR loop structures (dev tool).
#![allow(clippy::needless_range_loop, clippy::type_complexity)]
use bernoulli_bench::{can1072_lower, time_best_of};
use bernoulli_formats::{gen, Csr};
use std::hint::black_box;

fn synth_style(l: &Csr<f64>, b: &mut [f64]) {
    for v0 in 0..l.nrows as i64 {
        let p0_0 = v0 as usize;
        let mut acc = b[v0 as usize];
        for p in l.rowptr[p0_0]..l.rowptr[p0_0 + 1] {
            let v1 = l.colind[p] as i64;
            if (v1 - v0) == 0 {
                acc /= l.values[p];
            }
            if (v0 - v1 - 1) >= 0 {
                acc -= l.values[p] * b[v1 as usize];
            }
        }
        b[v0 as usize] = acc;
    }
}

fn synth_else(l: &Csr<f64>, b: &mut [f64]) {
    for v0 in 0..l.nrows as i64 {
        let p0_0 = v0 as usize;
        let mut acc = b[v0 as usize];
        for p in l.rowptr[p0_0]..l.rowptr[p0_0 + 1] {
            let v1 = l.colind[p] as i64;
            if v0 - v1 > 0 {
                acc -= l.values[p] * b[v1 as usize];
            } else if v1 == v0 {
                acc /= l.values[p];
            }
        }
        b[v0 as usize] = acc;
    }
}

fn lib_style_cmp(l: &Csr<f64>, b: &mut [f64]) {
    // Exact generated structure, but guards as comparisons.
    for v0 in 0..l.nrows as i64 {
        let p0_0 = v0 as usize;
        let mut acc__ = b[v0 as usize];
        let mut pivot__ = 0.0f64;
        let mut has_pivot__ = false;
        for p0_1 in l.rowptr[p0_0]..l.rowptr[p0_0 + 1] {
            let v1 = l.colind[p0_1] as i64;
            if v0 > v1 {
                acc__ -= l.values[p0_1] * b[v1 as usize];
            } else if v1 == v0 {
                pivot__ = l.values[p0_1];
                has_pivot__ = true;
            }
        }
        if has_pivot__ {
            acc__ /= pivot__;
        }
        b[v0 as usize] = acc__;
    }
}

fn lib_style_sub(l: &Csr<f64>, b: &mut [f64]) {
    // Exact generated structure (sub-and-test guards).
    for v0 in 0..l.nrows as i64 {
        let p0_0 = v0 as usize;
        let mut acc__ = b[v0 as usize];
        let mut pivot__ = 0.0f64;
        let mut has_pivot__ = false;
        for p0_1 in l.rowptr[p0_0]..l.rowptr[p0_0 + 1] {
            let v1 = l.colind[p0_1] as i64;
            if (v0 - v1 - 1) >= 0 {
                acc__ -= l.values[p0_1] * b[v1 as usize];
            } else if (v1 - v0) == 0 {
                pivot__ = l.values[p0_1];
                has_pivot__ = true;
            }
        }
        if has_pivot__ {
            acc__ /= pivot__;
        }
        b[v0 as usize] = acc__;
    }
}

fn hw_style(l: &Csr<f64>, b: &mut [f64]) {
    for i in 0..l.nrows {
        let mut acc = b[i];
        let mut diag = 0.0;
        for p in l.rowptr[i]..l.rowptr[i + 1] {
            let c = l.colind[p];
            if c < i {
                acc -= l.values[p] * b[c];
            } else if c == i {
                diag = l.values[p];
            }
        }
        b[i] = acc / diag;
    }
}

fn main() {
    let t = can1072_lower();
    let l = Csr::from_triplets(&t);
    let b0 = gen::dense_vector(1072, 42);
    let flops = 2.0 * t.nnz() as f64;
    let kernels: Vec<(&str, fn(&Csr<f64>, &mut [f64]))> = vec![
        ("synth_style", synth_style),
        ("synth_else", synth_else),
        ("lib_cmp", lib_style_cmp),
        ("lib_sub", lib_style_sub),
        ("hw_style", hw_style),
        ("lib_synth", |l, b| {
            bernoulli_blas::synth::ts_csr(l.nrows as i64, l, b)
        }),
        ("lib_hw", |l, b| bernoulli_blas::handwritten::ts_csr(l, b)),
    ];
    // Best of 12 rounds of median-of-20 per kernel (the shared
    // bench-harness helper) to fight noisy-neighbor variance.
    for (name, f) in &kernels {
        let tm = time_best_of(12, 20, || {
            let mut b = b0.clone();
            f(black_box(&l), &mut b);
            black_box(b);
        });
        println!("{name:<12} {:8.1} MFLOP/s", flops / tm / 1e6);
    }
}
