//! S32 — parallel kernel scaling: CSR MVM and level-scheduled CSR
//! triangular solve on `can_1072` across partition granularities
//! {1, 2, 4, 8}, with the sequential kernels as the baseline ids.
//!
//! The partition granularity (`nthreads` parameter) is what varies; the
//! actual concurrency is whatever the global pool provides (set
//! `BERNOULLI_THREADS`, default `available_parallelism`). On a
//! single-core host the parallel lines measure pure subsystem overhead.

use bernoulli_bench::{can1072, can1072_lower};
use bernoulli_blas::{handwritten as hw, par};
use bernoulli_formats::{gen, Csr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_par_mvm(c: &mut Criterion) {
    let t = can1072();
    let (m, n) = (t.nrows(), t.ncols());
    let a = Csr::from_triplets(&t);
    let x = gen::dense_vector(n, 7);

    let mut g = c.benchmark_group("par_scaling_mvm_csr");
    g.bench_function(BenchmarkId::new("seq", "-"), |bch| {
        bch.iter(|| {
            let mut y = vec![0.0; m];
            hw::mvm_csr(black_box(&a), &x, &mut y);
            black_box(y);
        })
    });
    for th in THREADS {
        g.bench_function(BenchmarkId::new("par", th), |bch| {
            bch.iter(|| {
                let mut y = vec![0.0; m];
                par::par_mvm_csr(black_box(&a), &x, &mut y, th);
                black_box(y);
            })
        });
    }
    g.finish();
}

fn bench_par_ts(c: &mut Criterion) {
    let t = can1072_lower();
    let n = t.nrows();
    let l = Csr::from_triplets(&t);
    let sched = par::LevelSchedule::build(&l);
    let b0 = gen::dense_vector(n, 42);

    let mut g = c.benchmark_group("par_scaling_ts_csr");
    g.bench_function(BenchmarkId::new("seq", "-"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            hw::ts_csr(black_box(&l), &mut b);
            black_box(b);
        })
    });
    for th in THREADS {
        g.bench_function(BenchmarkId::new("par", th), |bch| {
            bch.iter(|| {
                let mut b = b0.clone();
                par::par_ts_csr_scheduled(black_box(&l), &sched, &mut b, th);
                black_box(b);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_par_mvm, bench_par_ts);
criterion_main!(benches);
