//! E1/E2 — paper Figs. 12 & 13: triangular solve on `can_1072`, formats
//! CSR / CSC / JAD, three implementations per format:
//!
//! - `synth`: the Bernoulli-synthesized kernel (committed emitter output);
//! - `nist_c`: the handwritten specialized kernel (NIST C role);
//! - `nist_f`: the generic multi-RHS kernel invoked with k = 1 (NIST
//!   Fortran role).
//!
//! Paper shape to reproduce: synth ≈ nist_c, both faster than nist_f,
//! consistently across formats. (The paper's two machines collapse to
//! one host; see DESIGN.md substitution 2.)

use bernoulli_bench::can1072_lower;
use bernoulli_blas::{generic_rhs, handwritten as hw, synth};
use bernoulli_formats::{gen, Csc, Csr, Jad, Triplets};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ts(c: &mut Criterion) {
    let l: Triplets<f64> = can1072_lower();
    let n = l.nrows();
    let b0 = gen::dense_vector(n, 42);
    let csr = Csr::from_triplets(&l);
    let csc = Csc::from_triplets(&l);
    let jad = Jad::from_triplets(&l);

    let mut g = c.benchmark_group("fig12_13_ts_can1072");

    g.bench_function(BenchmarkId::new("csr", "synth"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            synth::ts_csr(n as i64, black_box(&csr), &mut b);
            black_box(b);
        })
    });
    g.bench_function(BenchmarkId::new("csr", "nist_c"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            hw::ts_csr(black_box(&csr), &mut b);
            black_box(b);
        })
    });
    g.bench_function(BenchmarkId::new("csr", "nist_f"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            generic_rhs::ts_csr_multi(black_box(&csr), &mut b, 1);
            black_box(b);
        })
    });

    g.bench_function(BenchmarkId::new("csc", "synth"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            synth::ts_csc(n as i64, black_box(&csc), &mut b);
            black_box(b);
        })
    });
    g.bench_function(BenchmarkId::new("csc", "nist_c"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            hw::ts_csc(black_box(&csc), &mut b);
            black_box(b);
        })
    });
    g.bench_function(BenchmarkId::new("csc", "nist_f"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            generic_rhs::ts_csc_multi(black_box(&csc), &mut b, 1);
            black_box(b);
        })
    });

    g.bench_function(BenchmarkId::new("jad", "synth"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            synth::ts_jad(n as i64, black_box(&jad), &mut b);
            black_box(b);
        })
    });
    g.bench_function(BenchmarkId::new("jad", "nist_c"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            hw::ts_jad(black_box(&jad), &mut b);
            black_box(b);
        })
    });
    g.bench_function(BenchmarkId::new("jad", "nist_f"), |bch| {
        bch.iter(|| {
            let mut b = b0.clone();
            generic_rhs::ts_jad_multi(black_box(&jad), &mut b, 1);
            black_box(b);
        })
    });

    g.finish();
}

criterion_group!(benches, bench_ts);
criterion_main!(benches);
