//! E4 — common-enumeration strategies (paper §4.1, following the
//! relational formulation of [11]): sparse·sparse dot product by merge
//! join, hash join, and per-element binary search, across density ratios.
//!
//! Expected shape: merge join wins when the operands have similar sizes;
//! search-join wins when one side is much smaller than the other (few
//! probes into a large sorted side); hash join sits between, paying
//! hashing overhead but O(1) probes.

use bernoulli_blas::handwritten::{spdot_hash, spdot_merge};
use bernoulli_formats::{gen, HashVec, SparseVec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Search join: enumerate the smaller sorted side, binary-search the
/// larger.
fn spdot_search(x: &SparseVec<f64>, y: &SparseVec<f64>) -> f64 {
    let mut acc = 0.0;
    for (k, &i) in x.ind.iter().enumerate() {
        if let Some(p) = y.find(i) {
            acc += x.values[k] * y.values[p];
        }
    }
    acc
}

fn bench_join(c: &mut Criterion) {
    let n = 1_000_000;
    let big = 100_000;
    let mut g = c.benchmark_group("ablation_join_spdot");
    for small in [100usize, 1_000, 10_000, 100_000] {
        let xa = gen::sparse_vector(n, small, 1);
        let ya = gen::sparse_vector(n, big, 2);
        let x = SparseVec::from_pairs(n, &xa);
        let ys = SparseVec::from_pairs(n, &ya);
        let yh = HashVec::from_pairs(n, &ya);

        g.bench_function(BenchmarkId::new("merge", small), |b| {
            b.iter(|| black_box(spdot_merge(black_box(&x), black_box(&ys))))
        });
        g.bench_function(BenchmarkId::new("hash", small), |b| {
            b.iter(|| black_box(spdot_hash(black_box(&x), black_box(&yh))))
        });
        g.bench_function(BenchmarkId::new("search", small), |b| {
            b.iter(|| black_box(spdot_search(black_box(&x), black_box(&ys))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
