//! E5 — the data-centric heuristic (paper §4.3): CSR MVM executed
//! data-centrically (enumerate stored entries) vs iteration-centrically
//! (enumerate the dense iteration space, random-access the matrix).
//!
//! Expected shape: data-centric wins by roughly the inverse fill ratio
//! (n²/nnz), which is the whole point of the paper's restriction to
//! data-centric dimension orders.

#![allow(clippy::needless_range_loop, clippy::type_complexity)]
use bernoulli_bench::can1072;
use bernoulli_blas::handwritten::mvm_csr;
use bernoulli_formats::{gen, Csr, SparseMatrix};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The naive iteration-centric code the compiler deliberately avoids:
/// the dense loop nest with random access (binary search per element).
fn mvm_iteration_centric(a: &Csr<f64>, x: &[f64], y: &mut [f64]) {
    for i in 0..a.nrows {
        let mut acc = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            acc += a.get(i, j) * xj;
        }
        y[i] += acc;
    }
}

fn bench_order(c: &mut Criterion) {
    // A smaller instance keeps the quadratic baseline tractable.
    let t = gen::structurally_symmetric(512, 6 * 512, 48, 5);
    let a = Csr::from_triplets(&t);
    let x = gen::dense_vector(512, 3);

    let mut g = c.benchmark_group("ablation_order_mvm");
    g.bench_function("data_centric", |b| {
        b.iter(|| {
            let mut y = vec![0.0; 512];
            mvm_csr(black_box(&a), &x, &mut y);
            black_box(y);
        })
    });
    g.bench_function("iteration_centric", |b| {
        b.iter(|| {
            let mut y = vec![0.0; 512];
            mvm_iteration_centric(black_box(&a), &x, &mut y);
            black_box(y);
        })
    });
    g.finish();

    // Also on the real evaluation matrix, but sample fewer iterations.
    let t = can1072();
    let a = Csr::from_triplets(&t);
    let x = gen::dense_vector(1072, 3);
    let mut g = c.benchmark_group("ablation_order_mvm_can1072");
    g.sample_size(10);
    g.bench_function("data_centric", |b| {
        b.iter(|| {
            let mut y = vec![0.0; 1072];
            mvm_csr(black_box(&a), &x, &mut y);
            black_box(y);
        })
    });
    g.bench_function("iteration_centric", |b| {
        b.iter(|| {
            let mut y = vec![0.0; 1072];
            mvm_iteration_centric(black_box(&a), &x, &mut y);
            black_box(y);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_order);
criterion_main!(benches);
