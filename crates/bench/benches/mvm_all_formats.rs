//! E3 — the paper's "representative for other inputs and benchmarks"
//! claim: MVM across all formats, synthesized vs handwritten, on the
//! `can_1072`-like input (plus a banded input where DIA shines).

use bernoulli_bench::can1072;
use bernoulli_blas::{handwritten as hw, parallel, synth};
use bernoulli_formats::{gen, Coo, Csc, Csr, Dia, Ell, Jad, Triplets};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_input(c: &mut Criterion, label: &str, t: &Triplets<f64>) {
    let (m, n) = (t.nrows(), t.ncols());
    let x = gen::dense_vector(n, 7);
    let csr = Csr::from_triplets(t);
    let csc = Csc::from_triplets(t);
    let coo = Coo::from_triplets(t);
    let dia = Dia::from_triplets(t);
    let ell = Ell::from_triplets(t);
    let jad = Jad::from_triplets(t);

    let mut g = c.benchmark_group(format!("mvm_{label}"));

    macro_rules! pair {
        ($fmt:literal, $mat:ident, $synth:path, $hand:path) => {
            g.bench_function(BenchmarkId::new($fmt, "synth"), |b| {
                b.iter(|| {
                    let mut y = vec![0.0; m];
                    $synth(m as i64, n as i64, black_box(&$mat), &x, &mut y);
                    black_box(y);
                })
            });
            g.bench_function(BenchmarkId::new($fmt, "nist_c"), |b| {
                b.iter(|| {
                    let mut y = vec![0.0; m];
                    $hand(black_box(&$mat), &x, &mut y);
                    black_box(y);
                })
            });
        };
    }

    pair!("csr", csr, synth::mvm_csr, hw::mvm_csr);
    pair!("csc", csc, synth::mvm_csc, hw::mvm_csc);
    pair!("coo", coo, synth::mvm_coo, hw::mvm_coo);
    pair!("dia", dia, synth::mvm_dia, hw::mvm_dia);
    pair!("ell", ell, synth::mvm_ell, hw::mvm_ell);
    pair!("jad", jad, synth::mvm_jad, hw::mvm_jad);

    // Parallel extension (CSR, 4 threads).
    g.bench_function(BenchmarkId::new("csr", "parallel4"), |b| {
        b.iter(|| {
            let mut y = vec![0.0; m];
            parallel::par_mvm_csr(black_box(&csr), &x, &mut y, 4);
            black_box(y);
        })
    });

    g.finish();
}

fn bench_mvm(c: &mut Criterion) {
    bench_input(c, "can1072", &can1072());
    bench_input(c, "banded1000", &gen::banded(1000, 8, 17));
}

criterion_group!(benches, bench_mvm);
criterion_main!(benches);
