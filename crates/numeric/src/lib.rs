//! Exact rational arithmetic and small dense rational linear algebra.
//!
//! This crate is the numeric substrate for the Bernoulli sparse-compiler
//! reproduction. The restructuring framework of the paper manipulates
//! *affine* objects throughout — dependence polyhedra, embedding functions,
//! the `G` matrix used for redundant-dimension elimination — and all of the
//! associated decision procedures (Fourier–Motzkin elimination, Farkas
//! multiplier systems, rank computations) must be exact: floating point
//! would silently mis-classify legality and redundancy.
//!
//! Everything here works over [`Rational`], a normalized `i128` fraction.
//! The polyhedra arising from loop nests of depth ≤ ~8 keep numerators and
//! denominators tiny, so `i128` with overflow panics (rather than bignum)
//! is the right trade-off: exactness with zero allocation per scalar.
//!
//! Contents:
//! - [`Rational`]: normalized exact fraction with full operator support.
//! - [`gcd`]/[`lcm`]: integer helpers.
//! - [`Matrix`]: dense row-major rational matrix with Gaussian elimination,
//!   rank, reduced row echelon form, nullspace and linear-system solving.
//! - [`RowSpace`]: incremental row-space tracker used to detect redundant
//!   product-space dimensions (paper §4.1, Fig. 7).

mod matrix;
mod rational;
mod rowspace;

pub use matrix::Matrix;
pub use rational::{gcd, lcm, Rational};
pub use rowspace::RowSpace;
