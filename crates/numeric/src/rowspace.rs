//! Incremental row-space membership, used for redundant-dimension
//! elimination (paper §4.1).
//!
//! The paper identifies a product-space dimension as *redundant* when its
//! row of the embedding matrix `G` is a linear combination of the rows of
//! the dimensions enumerated before it. Scanning dimensions outermost to
//! innermost is exactly incremental row-space insertion, which this type
//! implements by maintaining an echelonized basis.

use crate::Rational;

/// An incrementally-maintained row space over `Q^n`.
#[derive(Clone, Debug)]
pub struct RowSpace {
    dim: usize,
    /// Echelonized basis rows; `lead[i]` is the pivot column of `basis[i]`,
    /// strictly increasing.
    basis: Vec<Vec<Rational>>,
    lead: Vec<usize>,
}

impl RowSpace {
    /// Creates an empty row space of ambient dimension `dim`.
    pub fn new(dim: usize) -> RowSpace {
        RowSpace {
            dim,
            basis: Vec::new(),
            lead: Vec::new(),
        }
    }

    /// Current rank (number of independent rows inserted so far).
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Reduces `row` against the basis, returning the residual.
    fn reduce(&self, row: &[Rational]) -> Vec<Rational> {
        let mut v = row.to_vec();
        for (b, &l) in self.basis.iter().zip(&self.lead) {
            if !v[l].is_zero() {
                let f = v[l];
                for (x, y) in v.iter_mut().zip(b) {
                    *x -= f * *y;
                }
            }
        }
        v
    }

    /// True iff `row` already lies in the span of the inserted rows.
    pub fn contains(&self, row: &[Rational]) -> bool {
        assert_eq!(row.len(), self.dim, "dimension mismatch");
        self.reduce(row).iter().all(|x| x.is_zero())
    }

    /// Inserts `row`; returns `true` if it was independent (i.e. the rank
    /// grew), `false` if it was already in the span (a *redundant* row).
    pub fn insert(&mut self, row: &[Rational]) -> bool {
        assert_eq!(row.len(), self.dim, "dimension mismatch");
        let mut v = self.reduce(row);
        let Some(l) = v.iter().position(|x| !x.is_zero()) else {
            return false;
        };
        // Normalize the new basis row so its pivot is 1.
        let inv = v[l].recip();
        for x in v.iter_mut() {
            *x *= inv;
        }
        // Back-substitute into existing basis rows to keep them reduced.
        for b in self.basis.iter_mut() {
            if !b[l].is_zero() {
                let f = b[l];
                for (x, y) in b.iter_mut().zip(&v) {
                    *x -= f * *y;
                }
            }
        }
        // Keep pivot columns sorted for a deterministic reduce order.
        let pos = self.lead.partition_point(|&x| x < l);
        self.basis.insert(pos, v);
        self.lead.insert(pos, l);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn row(v: &[i128]) -> Vec<Rational> {
        v.iter().map(|&x| Rational::int(x)).collect()
    }

    #[test]
    fn independent_rows_grow_rank() {
        let mut s = RowSpace::new(3);
        assert!(s.insert(&row(&[1, 0, 0])));
        assert!(s.insert(&row(&[0, 1, 0])));
        assert_eq!(s.rank(), 2);
        assert!(!s.contains(&row(&[0, 0, 1])));
        assert!(s.contains(&row(&[2, -3, 0])));
    }

    #[test]
    fn redundant_rows_rejected() {
        let mut s = RowSpace::new(3);
        assert!(s.insert(&row(&[1, 2, 3])));
        assert!(!s.insert(&row(&[2, 4, 6])));
        assert_eq!(s.rank(), 1);
    }

    #[test]
    fn zero_row_is_redundant() {
        let mut s = RowSpace::new(2);
        assert!(!s.insert(&row(&[0, 0])));
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn agrees_with_matrix_redundancy() {
        // Cross-check against Matrix::row_is_redundant on the Fig. 7 matrix.
        let g = Matrix::from_int_rows(&[
            &[1, 0, 0],
            &[0, 0, 1],
            &[1, 0, 0],
            &[0, 1, 0],
            &[1, 0, 0],
            &[0, 1, 0],
            &[0, 0, 1],
        ]);
        let mut s = RowSpace::new(3);
        for i in 0..g.rows() {
            let inserted = s.insert(g.row(i));
            assert_eq!(inserted, !g.row_is_redundant(i), "row {i}");
        }
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn rational_pivots() {
        let mut s = RowSpace::new(2);
        assert!(s.insert(&[Rational::new(1, 2), Rational::new(1, 3)]));
        assert!(s.contains(&[Rational::int(3), Rational::int(2)]));
        assert!(!s.contains(&[Rational::int(3), Rational::int(1)]));
    }
}
