//! Dense row-major rational matrices with exact Gaussian elimination.
//!
//! These matrices are small (dimensions on the order of the loop depth of a
//! kernel, i.e. ≤ ~16), so a simple dense representation with exact
//! arithmetic is both fast enough and the easiest to audit.

use crate::Rational;
use std::fmt;
use std::ops::{Index, IndexMut, Mul};

/// A dense `rows × cols` matrix of [`Rational`] values.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::ONE;
        }
        m
    }

    /// Creates a matrix from row slices of integers (test/builder helper).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_int_rows(rows: &[&[i128]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = Rational::int(v);
            }
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Rational>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `i` as a slice.
    pub fn row(&self, i: usize) -> &[Rational] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [Rational] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[Rational]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Rational]) -> Vec<Rational> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .map(|(&a, &b)| a * b)
                    .sum::<Rational>()
            })
            .collect()
    }

    /// In-place reduction to *reduced row echelon form*; returns the list
    /// of pivot column indices (one per non-zero row, in order).
    pub fn rref(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..self.cols {
            if r == self.rows {
                break;
            }
            // Find a row at or below `r` with a non-zero entry in column c.
            let Some(p) = (r..self.rows).find(|&i| !self[(i, c)].is_zero()) else {
                continue;
            };
            self.swap_rows(r, p);
            let inv = self[(r, c)].recip();
            for j in c..self.cols {
                self[(r, j)] *= inv;
            }
            for i in 0..self.rows {
                if i != r && !self[(i, c)].is_zero() {
                    let f = self[(i, c)];
                    for j in c..self.cols {
                        let sub = f * self[(r, j)];
                        self[(i, j)] -= sub;
                    }
                }
            }
            pivots.push(c);
            r += 1;
        }
        pivots
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.rref().len()
    }

    /// A basis for the (right) nullspace `{ x : self * x = 0 }`, one vector
    /// per non-pivot column.
    pub fn nullspace(&self) -> Vec<Vec<Rational>> {
        let mut m = self.clone();
        let pivots = m.rref();
        let mut basis = Vec::new();
        let pivot_set: Vec<Option<usize>> = {
            // pivot_set[c] = Some(row index of pivot in column c)
            let mut v = vec![None; self.cols];
            for (row, &c) in pivots.iter().enumerate() {
                v[c] = Some(row);
            }
            v
        };
        for free in 0..self.cols {
            if pivot_set[free].is_some() {
                continue;
            }
            let mut x = vec![Rational::ZERO; self.cols];
            x[free] = Rational::ONE;
            for (c, &pr) in pivot_set.iter().enumerate() {
                if let Some(row) = pr {
                    x[c] = -m[(row, free)];
                }
            }
            basis.push(x);
        }
        basis
    }

    /// Solves `self * x = b` for one solution, if any exists.
    ///
    /// Returns `None` when the system is inconsistent. When the system is
    /// under-determined an arbitrary particular solution (free variables
    /// set to zero) is returned.
    pub fn solve(&self, b: &[Rational]) -> Option<Vec<Rational>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        // Form the augmented matrix and reduce.
        let mut aug = Matrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            aug.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            aug[(i, self.cols)] = b[i];
        }
        let pivots = aug.rref();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.last() == Some(&self.cols) {
            return None;
        }
        let mut x = vec![Rational::ZERO; self.cols];
        for (row, &c) in pivots.iter().enumerate() {
            x[c] = aug[(row, self.cols)];
        }
        Some(x)
    }

    /// True iff row `r` is a linear combination of the rows strictly
    /// before it. This is exactly the paper's redundancy condition for
    /// product-space dimensions (§4.1).
    pub fn row_is_redundant(&self, r: usize) -> bool {
        if r == 0 {
            return self.row(0).iter().all(|x| x.is_zero());
        }
        let prefix = Matrix {
            rows: r,
            cols: self.cols,
            data: self.data[..r * self.cols].to_vec(),
        };
        // row r is in the span of prefix rows iff the transpose system
        // prefixᵀ · λ = rowᵀ is consistent.
        prefix.transpose().solve(self.row(r)).is_some()
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let add = a * rhs[(k, j)];
                    out[(i, j)] += add;
                }
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::int(n)
    }

    #[test]
    fn identity_and_index() {
        let id = Matrix::identity(3);
        assert_eq!(id[(0, 0)], r(1));
        assert_eq!(id[(0, 1)], r(0));
        assert_eq!(id.rank(), 3);
    }

    #[test]
    fn mul_and_transpose() {
        let a = Matrix::from_int_rows(&[&[1, 2], &[3, 4]]);
        let b = Matrix::from_int_rows(&[&[5, 6], &[7, 8]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_int_rows(&[&[19, 22], &[43, 50]]));
        assert_eq!(a.transpose(), Matrix::from_int_rows(&[&[1, 3], &[2, 4]]));
    }

    #[test]
    fn mul_vec() {
        let a = Matrix::from_int_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.mul_vec(&[r(1), r(1)]), vec![r(3), r(7)]);
    }

    #[test]
    fn rank_deficient() {
        let a = Matrix::from_int_rows(&[&[1, 2, 3], &[2, 4, 6], &[1, 0, 1]]);
        assert_eq!(a.rank(), 2);
    }

    #[test]
    fn rref_pivots() {
        let mut a = Matrix::from_int_rows(&[&[0, 2, 4], &[1, 1, 1]]);
        let pivots = a.rref();
        assert_eq!(pivots, vec![0, 1]);
        // RREF should be [[1,0,-1],[0,1,2]]
        assert_eq!(a, Matrix::from_int_rows(&[&[1, 0, -1], &[0, 1, 2]]));
    }

    #[test]
    fn solve_unique() {
        let a = Matrix::from_int_rows(&[&[2, 1], &[1, 3]]);
        let x = a.solve(&[r(5), r(10)]).unwrap();
        assert_eq!(a.mul_vec(&x), vec![r(5), r(10)]);
        assert_eq!(x, vec![r(1), r(3)]);
    }

    #[test]
    fn solve_inconsistent() {
        let a = Matrix::from_int_rows(&[&[1, 1], &[2, 2]]);
        assert!(a.solve(&[r(1), r(3)]).is_none());
    }

    #[test]
    fn solve_underdetermined() {
        let a = Matrix::from_int_rows(&[&[1, 1, 1]]);
        let x = a.solve(&[r(6)]).unwrap();
        assert_eq!(a.mul_vec(&x), vec![r(6)]);
    }

    #[test]
    fn nullspace_basis() {
        let a = Matrix::from_int_rows(&[&[1, 2, 3], &[2, 4, 6]]);
        let ns = a.nullspace();
        assert_eq!(ns.len(), 2);
        for v in &ns {
            assert_eq!(a.mul_vec(v), vec![r(0), r(0)]);
        }
    }

    #[test]
    fn nullspace_trivial() {
        let a = Matrix::identity(3);
        assert!(a.nullspace().is_empty());
    }

    #[test]
    fn row_redundancy_matches_paper_example() {
        // The G matrix of Fig. 7 (paper §4.1): columns are (j1, j2, i2),
        // rows are the product-space dims l1r, l2r, l1c, l2c, j1, j2, i2.
        let g = Matrix::from_int_rows(&[
            &[1, 0, 0], // l1r <- j1        (S1 contributes j1; S2 contributes i2)
            &[0, 0, 1], // l2r <- i2
            &[1, 0, 0], // l1c <- j1
            &[0, 1, 0], // l2c <- j2
            &[1, 0, 0], // j1
            &[0, 1, 0], // j2
            &[0, 0, 1], // i2
        ]);
        // Paper: only l1r (row 0) and ... are non-redundant. With this block
        // structure rows 0, 1, 3 are the independent ones.
        assert!(!g.row_is_redundant(0));
        assert!(!g.row_is_redundant(1));
        assert!(g.row_is_redundant(2)); // l1c = l1r here (j1 = j1)
        assert!(!g.row_is_redundant(3));
        assert!(g.row_is_redundant(4));
        assert!(g.row_is_redundant(5));
        assert!(g.row_is_redundant(6));
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::zeros(0, 3);
        m.push_row(&[r(1), r(0), r(0)]);
        m.push_row(&[r(0), r(1), r(0)]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rational_entries() {
        let a = Matrix::from_vec(1, 2, vec![Rational::new(1, 2), Rational::new(1, 3)]);
        let x = a.solve(&[Rational::new(5, 6)]).unwrap();
        assert_eq!(a.mul_vec(&x), vec![Rational::new(5, 6)]);
    }
}
