//! Normalized exact rational numbers over `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Greatest common divisor of two integers (always non-negative).
///
/// `gcd(0, 0) == 0` by convention.
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple of two integers (always non-negative).
///
/// Panics on overflow. `lcm(0, x) == 0`.
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// An exact rational number `num / den`, kept normalized so that
/// `den > 0` and `gcd(num, den) == 1`.
///
/// Arithmetic panics on `i128` overflow; the affine objects manipulated by
/// the compiler keep coefficients small, so overflow indicates a logic bug
/// rather than a workload we need to support.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Creates the integer `n` as a rational.
    pub const fn int(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The numerator of the normalized fraction.
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator of the normalized fraction (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// True iff this value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// True iff this value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// True iff this value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// True iff this value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Sign of the value: -1, 0 or 1.
    pub fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Rounds toward the nearest `f64`; used only for cost-model reporting,
    /// never for decision procedures.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked_op(an: i128, ad: i128, bn: i128, bd: i128, sub: bool) -> Rational {
        // a/b + c/d computed over the lcm of the denominators to delay
        // overflow as long as possible.
        let g = gcd(ad, bd);
        let l = ad / g * bd; // == lcm, done in this order to avoid overflow
        let lhs = an.checked_mul(l / ad).expect("rational add overflow");
        let rhs = bn.checked_mul(l / bd).expect("rational add overflow");
        let num = if sub {
            lhs.checked_sub(rhs).expect("rational add overflow")
        } else {
            lhs.checked_add(rhs).expect("rational add overflow")
        };
        Rational::new(num, l)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::int(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::int(n as i128)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/d as a*d vs c*b (denominators positive).
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational cmp overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational cmp overflow");
        lhs.cmp(&rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::checked_op(self.num, self.den, rhs.num, rhs.den, false)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::checked_op(self.num, self.den, rhs.num, rhs.den, true)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let (g1, g2) = (g1.max(1), g2.max(1));
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("rational mul overflow");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("rational mul overflow");
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal is the point
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |a, b| a + b)
    }
}

impl Product for Rational {
    fn product<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert_eq!(Rational::new(1, 2).denom(), 2);
        assert_eq!(Rational::new(-1, 2).numer(), -1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
        assert_eq!(a + (-a), Rational::ZERO);
    }

    #[test]
    fn assign_ops() {
        let mut x = Rational::new(1, 4);
        x += Rational::new(1, 4);
        assert_eq!(x, Rational::new(1, 2));
        x -= Rational::new(1, 2);
        assert!(x.is_zero());
        let mut y = Rational::new(2, 3);
        y *= Rational::new(3, 2);
        assert_eq!(y, Rational::ONE);
        y /= Rational::new(1, 5);
        assert_eq!(y, Rational::int(5));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
        let mut v = vec![
            Rational::new(3, 4),
            Rational::new(-1, 2),
            Rational::ZERO,
            Rational::new(2, 3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Rational::new(-1, 2),
                Rational::ZERO,
                Rational::new(2, 3),
                Rational::new(3, 4)
            ]
        );
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::int(5).floor(), 5);
        assert_eq!(Rational::int(5).ceil(), 5);
    }

    #[test]
    fn predicates() {
        assert!(Rational::new(3, 1).is_integer());
        assert!(!Rational::new(3, 2).is_integer());
        assert!(Rational::new(1, 9).is_positive());
        assert!(Rational::new(-1, 9).is_negative());
        assert_eq!(Rational::new(-1, 9).signum(), -1);
        assert_eq!(Rational::ZERO.signum(), 0);
    }

    #[test]
    fn recip_abs() {
        assert_eq!(Rational::new(2, 3).recip(), Rational::new(3, 2));
        assert_eq!(Rational::new(-2, 3).recip(), Rational::new(-3, 2));
        assert_eq!(Rational::new(-2, 3).abs(), Rational::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn sum_product() {
        let v = [
            Rational::new(1, 2),
            Rational::new(1, 3),
            Rational::new(1, 6),
        ];
        assert_eq!(v.iter().copied().sum::<Rational>(), Rational::ONE);
        let p: Rational = v.iter().copied().product();
        assert_eq!(p, Rational::new(1, 36));
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 6).to_string(), "1/2");
        assert_eq!(Rational::int(-4).to_string(), "-4");
    }

    #[test]
    fn to_f64() {
        assert!((Rational::new(1, 2).to_f64() - 0.5).abs() < 1e-15);
    }
}
