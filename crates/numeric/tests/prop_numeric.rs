//! Property-based tests for exact rational arithmetic and linear algebra.

use bernoulli_numeric::{gcd, lcm, Matrix, Rational, RowSpace};
use proptest::prelude::*;

fn small_rational() -> impl Strategy<Value = Rational> {
    (-50i128..=50, 1i128..=12).prop_map(|(n, d)| Rational::new(n, d))
}

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-6i128..=6, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v.into_iter().map(Rational::int).collect()))
}

proptest! {
    #[test]
    fn gcd_divides_both(a in -1000i128..1000, b in -1000i128..1000) {
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn lcm_is_common_multiple(a in 1i128..100, b in 1i128..100) {
        let l = lcm(a, b);
        prop_assert_eq!(l % a, 0);
        prop_assert_eq!(l % b, 0);
        prop_assert_eq!(l * gcd(a, b), a * b);
    }

    #[test]
    fn rational_field_axioms(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Rational::ZERO, a);
        prop_assert_eq!(a * Rational::ONE, a);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.recip(), Rational::ONE);
        }
    }

    #[test]
    fn rational_ordering_consistent(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a < b, (b - a).is_positive());
        prop_assert_eq!(a == b, (a - b).is_zero());
    }

    #[test]
    fn floor_ceil_bracket(a in small_rational()) {
        let f = Rational::int(a.floor());
        let c = Rational::int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!((a - f) < Rational::ONE);
        prop_assert!((c - a) < Rational::ONE);
        if a.is_integer() {
            prop_assert_eq!(f, c);
        }
    }

    #[test]
    fn rank_bounds(m in small_matrix(4, 5)) {
        let r = m.rank();
        prop_assert!(r <= 4);
        prop_assert_eq!(m.rank(), m.transpose().rank());
    }

    #[test]
    fn nullspace_vectors_in_kernel(m in small_matrix(3, 5)) {
        let ns = m.nullspace();
        prop_assert_eq!(ns.len(), 5 - m.rank());
        for v in &ns {
            for y in m.mul_vec(v) {
                prop_assert!(y.is_zero());
            }
        }
    }

    #[test]
    fn solve_roundtrip(m in small_matrix(4, 4), x in proptest::collection::vec(-5i128..=5, 4)) {
        // Construct b = m * x; solving must produce some x' with m x' = b.
        let x: Vec<Rational> = x.into_iter().map(Rational::int).collect();
        let b = m.mul_vec(&x);
        let solved = m.solve(&b).expect("consistent by construction");
        prop_assert_eq!(m.mul_vec(&solved), b);
    }

    #[test]
    fn rowspace_matches_batch_rank(rows in proptest::collection::vec(proptest::collection::vec(-4i128..=4, 4), 1..7)) {
        let mut s = RowSpace::new(4);
        let mut m = Matrix::zeros(0, 4);
        for row in &rows {
            let rr: Vec<Rational> = row.iter().map(|&x| Rational::int(x)).collect();
            m.push_row(&rr);
            let grew = s.insert(&rr);
            // Incremental insertion grows rank iff batch rank grew.
            prop_assert_eq!(s.rank(), m.rank());
            prop_assert_eq!(grew, m.rank() == s.rank() && !m.row_is_redundant(m.rows() - 1));
        }
    }
}
