//! Fuzzing the program parser: arbitrary bytes and token soup must
//! produce `Ok` or a typed `ParseError` — never a panic. Programs that
//! do parse must additionally survive `validate` without panicking.

use bernoulli_ir::parse_program;
use proptest::prelude::*;

/// Language tokens plus junk, so generated inputs exercise the deep
/// parser paths (declarations, loops, expressions) and the error paths
/// in roughly equal measure.
const TOKENS: &[&str] = &[
    "program",
    "in",
    "out",
    "inout",
    "matrix",
    "vector",
    "for",
    "0",
    "1",
    "9",
    "-3",
    "18446744073709551616",
    "i",
    "j",
    "N",
    "M",
    "A",
    "x",
    "y",
    "p",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "..",
    "=",
    "+",
    "-",
    "*",
    ".",
    "§",
    "",
    " ",
];

fn token_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec((0usize..TOKENS.len(), proptest::bool::ANY), 0..60).prop_map(
        |picks| {
            let mut s = String::new();
            for (t, newline) in picks {
                s.push_str(TOKENS[t]);
                s.push(if newline { '\n' } else { ' ' });
            }
            s
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary (possibly non-UTF8-boundary-respecting) char soup
    /// never panics the parser.
    #[test]
    fn arbitrary_chars_never_panic(codes in proptest::collection::vec(0u32..0x1100, 0..200)) {
        let src: String = codes.into_iter().filter_map(char::from_u32).collect();
        let _ = parse_program(&src);
    }

    /// Token soup never panics; whatever parses also validates without
    /// panicking.
    #[test]
    fn token_soup_never_panics(src in token_soup()) {
        if let Ok(p) = parse_program(&src) {
            let _ = p.validate();
        }
    }

    /// A plausible program skeleton with fuzzed loop bounds and indices
    /// never panics the parser or the validator.
    #[test]
    fn skeleton_with_fuzzed_body_never_panics(body in token_soup()) {
        let src = format!(
            "program p(N) {{\n  inout vector v[N];\n  for i in 0..N {{\n    {body}\n  }}\n}}"
        );
        if let Ok(p) = parse_program(&src) {
            let _ = p.validate();
        }
    }
}
