//! Property tests for the IR: printing then re-parsing a random program
//! is the identity, and the dense executor is deterministic.

use bernoulli_ir::{parse_program, AffineExpr, Program};
use bernoulli_ir::{ArrayDecl, ArrayKind, LhsRef, Loop, Node, Role, Statement, ValueExpr};
use proptest::prelude::*;

/// A small random affine expression over the given variables.
fn arb_affine(vars: Vec<String>) -> impl Strategy<Value = AffineExpr> {
    let nv = vars.len();
    (proptest::collection::vec(-3i64..=3, nv), -4i64..=4).prop_map(move |(coeffs, cst)| {
        let mut e = AffineExpr::constant(cst);
        for (v, c) in vars.iter().zip(coeffs) {
            e.add_term(v, c);
        }
        e
    })
}

/// A random single-loop program over one vector.
fn arb_program() -> impl Strategy<Value = Program> {
    let vars = vec!["i".to_string()];
    (
        arb_affine(vars.clone()),
        arb_affine(vars.clone()),
        -3i64..=3,
    )
        .prop_map(|(idx_w, idx_r, scale)| {
            // v[idx_w] = v[idx_r] * scale + 1
            let stmt = Statement {
                lhs: LhsRef {
                    array: "v".into(),
                    idxs: vec![idx_w],
                },
                rhs: ValueExpr::Add(
                    Box::new(ValueExpr::Mul(
                        Box::new(ValueExpr::Read(LhsRef {
                            array: "v".into(),
                            idxs: vec![idx_r],
                        })),
                        Box::new(ValueExpr::Const(scale as f64)),
                    )),
                    Box::new(ValueExpr::Const(1.0)),
                ),
            };
            Program {
                name: "p".into(),
                params: vec!["N".into()],
                arrays: vec![ArrayDecl {
                    name: "v".into(),
                    kind: ArrayKind::Vector,
                    role: Role::InOut,
                    dims: vec![AffineExpr::var("N")],
                }],
                body: vec![Node::Loop(Loop {
                    var: "i".into(),
                    lo: AffineExpr::constant(0),
                    hi: AffineExpr::var("N"),
                    body: vec![Node::Stmt(stmt)],
                })],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse is the identity on the AST.
    #[test]
    fn pretty_print_roundtrip(p in arb_program()) {
        let text = p.to_string();
        let back = parse_program(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(back, p);
    }

    /// Affine expressions round-trip through their display form when
    /// embedded in a program context.
    #[test]
    fn affine_display_parse(coeff in -5i64..=5, cst in -9i64..=9) {
        let e = AffineExpr::from_terms(&[("i", coeff)], cst);
        let src = format!(
            "program q(N) {{ inout vector v[N]; for i in 0..N {{ v[{e}] = 0; }} }}"
        );
        let p = parse_program(&src).unwrap();
        let got = &p.statements()[0].stmt.lhs.idxs[0];
        prop_assert_eq!(got, &e);
    }
}
