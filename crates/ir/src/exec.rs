//! The reference dense executor.
//!
//! Runs a [`Program`] literally, with every matrix accessed through the
//! high-level (random-access) API. This is the semantics the synthesized
//! sparse code must reproduce — every integration test compares a plan's
//! output against this executor.

use crate::ast::*;
use crate::expr::AffineExpr;
use bernoulli_formats::SparseMatrix;
use std::collections::HashMap;

/// Execution environment: parameter values, dense vectors, and matrices
/// (any [`SparseMatrix`] implementor — including genuinely dense ones).
#[derive(Default)]
pub struct DenseEnv<'m> {
    pub params: HashMap<String, i64>,
    pub vectors: HashMap<String, Vec<f64>>,
    pub matrices: HashMap<String, &'m dyn SparseMatrix>,
}

impl<'m> DenseEnv<'m> {
    /// Creates an empty environment.
    pub fn new() -> DenseEnv<'m> {
        DenseEnv::default()
    }

    /// Binds a size parameter.
    pub fn param(mut self, name: &str, v: i64) -> Self {
        self.params.insert(name.to_string(), v);
        self
    }

    /// Binds a dense vector (moved in; fetch results with
    /// [`DenseEnv::take_vector`]).
    pub fn vector(mut self, name: &str, v: Vec<f64>) -> Self {
        self.vectors.insert(name.to_string(), v);
        self
    }

    /// Binds a matrix by reference.
    pub fn matrix(mut self, name: &str, m: &'m dyn SparseMatrix) -> Self {
        self.matrices.insert(name.to_string(), m);
        self
    }

    /// Removes and returns a vector (typically an output).
    ///
    /// # Panics
    /// Panics if the vector was never bound (or already taken); use
    /// [`DenseEnv::try_take_vector`] to recover instead.
    pub fn take_vector(&mut self, name: &str) -> Vec<f64> {
        match self.try_take_vector(name) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Removes and returns a vector, reporting an unbound name as an
    /// [`ExecError`] instead of panicking.
    pub fn try_take_vector(&mut self, name: &str) -> Result<Vec<f64>, ExecError> {
        self.vectors
            .remove(name)
            .ok_or_else(|| ExecError(format!("vector {name:?} not bound")))
    }
}

/// Errors surfaced by the executor.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecError(pub String);

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

/// Runs the program to completion against the environment.
///
/// Matrix writes are not supported (the BLAS kernels of the paper never
/// write into a sparse operand; results land in dense vectors).
pub fn run_dense(p: &Program, env: &mut DenseEnv) -> Result<(), ExecError> {
    // Check all declared arrays are bound and sized consistently.
    let mut ivars: HashMap<String, i64> = env.params.clone();
    for a in &p.arrays {
        match a.kind {
            ArrayKind::Vector => {
                let v = env
                    .vectors
                    .get(&a.name)
                    .ok_or_else(|| ExecError(format!("vector {:?} not bound", a.name)))?;
                let want = a.dims[0].eval(&ivars);
                if v.len() as i64 != want {
                    return Err(ExecError(format!(
                        "vector {:?} has length {}, declared {}",
                        a.name,
                        v.len(),
                        want
                    )));
                }
            }
            ArrayKind::Matrix => {
                let m = env
                    .matrices
                    .get(&a.name)
                    .ok_or_else(|| ExecError(format!("matrix {:?} not bound", a.name)))?;
                let (wr, wc) = (a.dims[0].eval(&ivars), a.dims[1].eval(&ivars));
                if (m.nrows() as i64, m.ncols() as i64) != (wr, wc) {
                    return Err(ExecError(format!(
                        "matrix {:?} is {}x{}, declared {}x{}",
                        a.name,
                        m.nrows(),
                        m.ncols(),
                        wr,
                        wc
                    )));
                }
            }
        }
    }
    run_nodes(&p.body, &mut ivars, env)
}

fn run_nodes(
    nodes: &[Node],
    ivars: &mut HashMap<String, i64>,
    env: &mut DenseEnv,
) -> Result<(), ExecError> {
    for n in nodes {
        match n {
            Node::Loop(l) => {
                let lo = l.lo.eval(ivars);
                let hi = l.hi.eval(ivars);
                for v in lo..hi {
                    ivars.insert(l.var.clone(), v);
                    run_nodes(&l.body, ivars, env)?;
                }
                ivars.remove(&l.var);
            }
            Node::Stmt(s) => {
                let value = eval_value(&s.rhs, ivars, env)?;
                write_ref(&s.lhs, value, ivars, env)?;
            }
        }
    }
    Ok(())
}

fn read_ref(r: &LhsRef, ivars: &HashMap<String, i64>, env: &DenseEnv) -> Result<f64, ExecError> {
    let idxs: Vec<i64> = r.idxs.iter().map(|e| e.eval(ivars)).collect();
    if let Some(v) = env.vectors.get(&r.array) {
        let i = idxs[0];
        if idxs.len() != 1 || i < 0 || i as usize >= v.len() {
            return Err(ExecError(format!("bad vector access {r} at {idxs:?}")));
        }
        return Ok(v[i as usize]);
    }
    if let Some(m) = env.matrices.get(&r.array) {
        if idxs.len() != 2 {
            return Err(ExecError(format!("matrix {r} needs 2 indices")));
        }
        let (i, j) = (idxs[0], idxs[1]);
        if i < 0 || j < 0 || i as usize >= m.nrows() || j as usize >= m.ncols() {
            return Err(ExecError(format!(
                "matrix access {r} out of range at ({i},{j})"
            )));
        }
        return Ok(m.get(i as usize, j as usize));
    }
    Err(ExecError(format!("array {:?} not bound", r.array)))
}

fn write_ref(
    r: &LhsRef,
    value: f64,
    ivars: &HashMap<String, i64>,
    env: &mut DenseEnv,
) -> Result<(), ExecError> {
    let idxs: Vec<i64> = r.idxs.iter().map(|e| e.eval(ivars)).collect();
    if let Some(v) = env.vectors.get_mut(&r.array) {
        let i = idxs[0];
        if idxs.len() != 1 || i < 0 || i as usize >= v.len() {
            return Err(ExecError(format!("bad vector write {r} at {idxs:?}")));
        }
        v[i as usize] = value;
        return Ok(());
    }
    if env.matrices.contains_key(&r.array) {
        return Err(ExecError(format!(
            "matrix {:?} is read-only in the reference executor",
            r.array
        )));
    }
    Err(ExecError(format!("array {:?} not bound", r.array)))
}

fn eval_value(
    e: &ValueExpr,
    ivars: &HashMap<String, i64>,
    env: &DenseEnv,
) -> Result<f64, ExecError> {
    Ok(match e {
        ValueExpr::Const(c) => *c,
        ValueExpr::Read(r) => read_ref(r, ivars, env)?,
        ValueExpr::Add(a, b) => eval_value(a, ivars, env)? + eval_value(b, ivars, env)?,
        ValueExpr::Sub(a, b) => eval_value(a, ivars, env)? - eval_value(b, ivars, env)?,
        ValueExpr::Mul(a, b) => eval_value(a, ivars, env)? * eval_value(b, ivars, env)?,
        ValueExpr::Div(a, b) => eval_value(a, ivars, env)? / eval_value(b, ivars, env)?,
        ValueExpr::Neg(a) => -eval_value(a, ivars, env)?,
    })
}

/// Evaluates an [`AffineExpr`] in a plain parameter map — a convenience
/// re-export for harness code.
pub fn eval_affine(e: &AffineExpr, env: &HashMap<String, i64>) -> i64 {
    e.eval(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use bernoulli_formats::{Dense, Triplets};

    const TS: &str = r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
    "#;

    #[test]
    fn triangular_solve_reference() {
        let p = parse_program(TS).unwrap();
        // L = [[2,0],[1,4]]; solve L y = b with b = [4, 6]:
        // y0 = 2; y1 = (6 - 1*2)/4 = 1.
        let l = Dense::from_triplets(&Triplets::from_entries(
            2,
            2,
            &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 4.0)],
        ));
        let mut env = DenseEnv::new()
            .param("N", 2)
            .vector("b", vec![4.0, 6.0])
            .matrix("L", &l);
        run_dense(&p, &mut env).unwrap();
        assert_eq!(env.take_vector("b"), vec![2.0, 1.0]);
    }

    #[test]
    fn mvm_reference() {
        let src = r#"
            program mvm(M, N) {
              in matrix A[M][N];
              in vector x[N];
              inout vector y[M];
              for i in 0..M {
                for j in 0..N {
                  y[i] = y[i] + A[i][j] * x[j];
                }
              }
            }
        "#;
        let p = parse_program(src).unwrap();
        let a = Dense::from_triplets(&Triplets::from_entries(
            2,
            3,
            &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)],
        ));
        let mut env = DenseEnv::new()
            .param("M", 2)
            .param("N", 3)
            .vector("x", vec![1.0, 2.0, 3.0])
            .vector("y", vec![0.0, 0.0])
            .matrix("A", &a);
        run_dense(&p, &mut env).unwrap();
        assert_eq!(env.take_vector("y"), vec![7.0, 6.0]);
    }

    #[test]
    fn unbound_arrays_error() {
        let p = parse_program(TS).unwrap();
        let mut env = DenseEnv::new().param("N", 2).vector("b", vec![1.0, 1.0]);
        let e = run_dense(&p, &mut env).unwrap_err();
        assert!(e.0.contains("matrix \"L\" not bound"));
    }

    #[test]
    fn size_mismatch_error() {
        let p = parse_program(TS).unwrap();
        let l = Dense::<f64>::zeros(3, 3);
        let mut env = DenseEnv::new()
            .param("N", 2)
            .vector("b", vec![1.0, 1.0])
            .matrix("L", &l);
        let e = run_dense(&p, &mut env).unwrap_err();
        assert!(e.0.contains("declared 2x2"));
    }

    #[test]
    fn sparse_matrix_as_input() {
        // The executor accepts any SparseMatrix implementor.
        let src = r#"
            program sum(N) {
              in matrix A[N][N];
              inout vector s[1];
              for i in 0..N {
                for j in 0..N {
                  s[0] = s[0] + A[i][j];
                }
              }
            }
        "#;
        let p = parse_program(src).unwrap();
        let a = bernoulli_formats::Csr::from_triplets(&Triplets::from_entries(
            3,
            3,
            &[(0, 0, 1.0), (2, 1, 2.0)],
        ));
        let mut env = DenseEnv::new()
            .param("N", 3)
            .vector("s", vec![0.0])
            .matrix("A", &a);
        run_dense(&p, &mut env).unwrap();
        assert_eq!(env.take_vector("s"), vec![3.0]);
    }
}
