//! Program representation: imperfectly-nested affine loop trees.

use crate::expr::AffineExpr;
use std::fmt;

/// Shape of a declared array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrayKind {
    /// Two-dimensional matrix (candidate for sparse storage).
    Matrix,
    /// One-dimensional vector (always dense in this paper's setting).
    Vector,
}

/// Dataflow role of a declared array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    In,
    Out,
    InOut,
}

/// An array declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDecl {
    pub name: String,
    pub kind: ArrayKind,
    pub role: Role,
    /// Declared extents (affine in the program parameters).
    pub dims: Vec<AffineExpr>,
}

/// A reference `array[idx...]` (1 index for vectors, 2 for matrices).
#[derive(Clone, Debug, PartialEq)]
pub struct LhsRef {
    pub array: String,
    pub idxs: Vec<AffineExpr>,
}

/// Scalar right-hand-side expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueExpr {
    Const(f64),
    /// `array[idx...]` read.
    Read(LhsRef),
    Add(Box<ValueExpr>, Box<ValueExpr>),
    Sub(Box<ValueExpr>, Box<ValueExpr>),
    Mul(Box<ValueExpr>, Box<ValueExpr>),
    Div(Box<ValueExpr>, Box<ValueExpr>),
    Neg(Box<ValueExpr>),
}

impl ValueExpr {
    /// All array reads in the expression, in evaluation order.
    pub fn reads(&self) -> Vec<&LhsRef> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<&'a LhsRef>) {
        match self {
            ValueExpr::Const(_) => {}
            ValueExpr::Read(r) => out.push(r),
            ValueExpr::Add(a, b)
            | ValueExpr::Sub(a, b)
            | ValueExpr::Mul(a, b)
            | ValueExpr::Div(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            ValueExpr::Neg(a) => a.collect_reads(out),
        }
    }
}

/// An assignment statement `lhs = rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Statement {
    pub lhs: LhsRef,
    pub rhs: ValueExpr,
}

/// A `for var in lo..hi` loop (half-open, stride 1, affine bounds).
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    pub var: String,
    pub lo: AffineExpr,
    /// Exclusive upper bound.
    pub hi: AffineExpr,
    pub body: Vec<Node>,
}

/// A node of the loop tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    Loop(Loop),
    Stmt(Statement),
}

/// A complete dense-matrix program.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    pub name: String,
    /// Symbolic size parameters (e.g. `N`).
    pub params: Vec<String>,
    pub arrays: Vec<ArrayDecl>,
    pub body: Vec<Node>,
}

/// Flattened information about one statement: its id (syntactic order),
/// enclosing loops outermost-first, and its textual position used for
/// original-program-order tie-breaking.
#[derive(Clone, Debug)]
pub struct StmtInfo {
    /// Index in syntactic order (S1 = 0, S2 = 1, ...).
    pub id: usize,
    /// Enclosing loops, outermost first: (var, lo, hi-exclusive).
    pub loops: Vec<(String, AffineExpr, AffineExpr)>,
    /// Position path in the tree (child indices), for syntactic order
    /// comparisons at equal loop depth.
    pub path: Vec<usize>,
    pub stmt: Statement,
}

impl StmtInfo {
    /// Loop variable names, outermost first.
    pub fn loop_vars(&self) -> Vec<&str> {
        self.loops.iter().map(|(v, _, _)| v.as_str()).collect()
    }

    /// Every access of the statement: the write (first) then all reads.
    pub fn accesses(&self) -> Vec<(&LhsRef, bool)> {
        let mut out = vec![(&self.stmt.lhs, true)];
        out.extend(self.stmt.rhs.reads().into_iter().map(|r| (r, false)));
        out
    }

    /// Number of loops shared with another statement (length of the
    /// common prefix of loop variable lists *and* tree paths).
    pub fn shared_loops(&self, other: &StmtInfo) -> usize {
        let mut n = 0;
        // Two statements share a loop only when it is literally the same
        // loop node, i.e. their paths agree on the step entering it.
        while n < self.loops.len()
            && n < other.loops.len()
            && self.loops[n].0 == other.loops[n].0
            && self.path.get(n) == other.path.get(n)
        {
            n += 1;
        }
        n
    }

    /// True iff `self` precedes `other` syntactically (textual order).
    pub fn before(&self, other: &StmtInfo) -> bool {
        self.path < other.path
    }
}

/// A semantically invalid [`Program`]: an undeclared array, a
/// wrong-arity reference, an out-of-scope variable, or shadowing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError(pub String);

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid program: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Finds an array declaration by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Semantic validation: every referenced array is declared with the
    /// right arity, every index expression only uses loop variables in
    /// scope and parameters, and loop variables don't shadow parameters.
    pub fn validate(&self) -> Result<(), ValidateError> {
        self.validate_inner().map_err(ValidateError)
    }

    fn validate_inner(&self) -> Result<(), String> {
        fn check_expr(
            p: &Program,
            scope: &[String],
            e: &AffineExpr,
            what: &str,
        ) -> Result<(), String> {
            for v in e.vars() {
                if !scope.iter().any(|s| s == v) && !p.params.iter().any(|q| q == v) {
                    return Err(format!("{what}: variable {v:?} is not in scope"));
                }
            }
            Ok(())
        }
        fn check_ref(p: &Program, scope: &[String], r: &LhsRef) -> Result<(), String> {
            let decl = p
                .array(&r.array)
                .ok_or_else(|| format!("array {:?} is not declared", r.array))?;
            let need = match decl.kind {
                ArrayKind::Matrix => 2,
                ArrayKind::Vector => 1,
            };
            if r.idxs.len() != need {
                return Err(format!(
                    "array {:?} used with {} indices, declared with {need}",
                    r.array,
                    r.idxs.len()
                ));
            }
            for e in &r.idxs {
                check_expr(p, scope, e, &format!("index of {:?}", r.array))?;
            }
            Ok(())
        }
        fn walk(p: &Program, scope: &mut Vec<String>, nodes: &[Node]) -> Result<(), String> {
            for n in nodes {
                match n {
                    Node::Loop(l) => {
                        if p.params.iter().any(|q| q == &l.var) {
                            return Err(format!("loop variable {:?} shadows a parameter", l.var));
                        }
                        if scope.iter().any(|s| s == &l.var) {
                            return Err(format!("loop variable {:?} shadows an outer loop", l.var));
                        }
                        check_expr(p, scope, &l.lo, "loop lower bound")?;
                        check_expr(p, scope, &l.hi, "loop upper bound")?;
                        scope.push(l.var.clone());
                        walk(p, scope, &l.body)?;
                        scope.pop();
                    }
                    Node::Stmt(st) => {
                        check_ref(p, scope, &st.lhs)?;
                        for r in st.rhs.reads() {
                            check_ref(p, scope, r)?;
                        }
                    }
                }
            }
            Ok(())
        }
        for a in &self.arrays {
            for d in &a.dims {
                check_expr(self, &[], d, &format!("declared extent of {:?}", a.name))?;
            }
        }
        walk(self, &mut Vec::new(), &self.body)
    }

    /// Flattens the loop tree into per-statement records, in syntactic
    /// order.
    pub fn statements(&self) -> Vec<StmtInfo> {
        let mut out = Vec::new();
        let mut loops = Vec::new();
        let mut path = Vec::new();
        collect(&self.body, &mut loops, &mut path, &mut out);
        out
    }

    /// The matrices referenced by the program (candidates for sparse
    /// instantiation).
    pub fn matrices(&self) -> Vec<&ArrayDecl> {
        self.arrays
            .iter()
            .filter(|a| a.kind == ArrayKind::Matrix)
            .collect()
    }
}

fn collect(
    nodes: &[Node],
    loops: &mut Vec<(String, AffineExpr, AffineExpr)>,
    path: &mut Vec<usize>,
    out: &mut Vec<StmtInfo>,
) {
    for (k, node) in nodes.iter().enumerate() {
        path.push(k);
        match node {
            Node::Stmt(s) => out.push(StmtInfo {
                id: out.len(),
                loops: loops.clone(),
                path: path.clone(),
                stmt: s.clone(),
            }),
            Node::Loop(l) => {
                loops.push((l.var.clone(), l.lo.clone(), l.hi.clone()));
                collect(&l.body, loops, path, out);
                loops.pop();
            }
        }
        path.pop();
    }
}

impl fmt::Display for ValueExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueExpr::Const(c) => write!(f, "{c}"),
            ValueExpr::Read(r) => write!(f, "{r}"),
            ValueExpr::Add(a, b) => write!(f, "({a} + {b})"),
            ValueExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            ValueExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            ValueExpr::Div(a, b) => write!(f, "({a} / {b})"),
            ValueExpr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

impl fmt::Display for LhsRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for i in &self.idxs {
            write!(f, "[{i}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}({}) {{", self.name, self.params.join(", "))?;
        for a in &self.arrays {
            let role = match a.role {
                Role::In => "in ",
                Role::Out => "out ",
                Role::InOut => "inout ",
            };
            let kind = match a.kind {
                ArrayKind::Matrix => "matrix",
                ArrayKind::Vector => "vector",
            };
            write!(f, "  {role}{kind} {}", a.name)?;
            for d in &a.dims {
                write!(f, "[{d}]")?;
            }
            writeln!(f, ";")?;
        }
        fn emit(nodes: &[Node], depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            for n in nodes {
                match n {
                    Node::Stmt(s) => writeln!(f, "{pad}{} = {};", s.lhs, s.rhs)?,
                    Node::Loop(l) => {
                        writeln!(f, "{pad}for {} in {}..{} {{", l.var, l.lo, l.hi)?;
                        emit(&l.body, depth + 1, f)?;
                        writeln!(f, "{pad}}}")?;
                    }
                }
            }
            Ok(())
        }
        emit(&self.body, 1, f)?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's triangular solve by hand.
    pub(crate) fn ts_program() -> Program {
        let j = AffineExpr::var("j");
        let i = AffineExpr::var("i");
        let n = AffineExpr::var("N");
        let b_j = LhsRef {
            array: "b".into(),
            idxs: vec![j.clone()],
        };
        let b_i = LhsRef {
            array: "b".into(),
            idxs: vec![i.clone()],
        };
        let l_jj = LhsRef {
            array: "L".into(),
            idxs: vec![j.clone(), j.clone()],
        };
        let l_ij = LhsRef {
            array: "L".into(),
            idxs: vec![i.clone(), j.clone()],
        };
        let s1 = Statement {
            lhs: b_j.clone(),
            rhs: ValueExpr::Div(
                Box::new(ValueExpr::Read(b_j.clone())),
                Box::new(ValueExpr::Read(l_jj)),
            ),
        };
        let s2 = Statement {
            lhs: b_i.clone(),
            rhs: ValueExpr::Sub(
                Box::new(ValueExpr::Read(b_i)),
                Box::new(ValueExpr::Mul(
                    Box::new(ValueExpr::Read(l_ij)),
                    Box::new(ValueExpr::Read(b_j)),
                )),
            ),
        };
        Program {
            name: "ts".into(),
            params: vec!["N".into()],
            arrays: vec![
                ArrayDecl {
                    name: "L".into(),
                    kind: ArrayKind::Matrix,
                    role: Role::In,
                    dims: vec![n.clone(), n.clone()],
                },
                ArrayDecl {
                    name: "b".into(),
                    kind: ArrayKind::Vector,
                    role: Role::InOut,
                    dims: vec![n.clone()],
                },
            ],
            body: vec![Node::Loop(Loop {
                var: "j".into(),
                lo: AffineExpr::constant(0),
                hi: n.clone(),
                body: vec![
                    Node::Stmt(s1),
                    Node::Loop(Loop {
                        var: "i".into(),
                        lo: &j + &AffineExpr::constant(1),
                        hi: n,
                        body: vec![Node::Stmt(s2)],
                    }),
                ],
            })],
        }
    }

    #[test]
    fn statement_flattening() {
        let p = ts_program();
        let stmts = p.statements();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].id, 0);
        assert_eq!(stmts[0].loop_vars(), vec!["j"]);
        assert_eq!(stmts[1].loop_vars(), vec!["j", "i"]);
        assert_eq!(stmts[0].path, vec![0, 0]);
        assert_eq!(stmts[1].path, vec![0, 1, 0]);
        assert!(stmts[0].before(&stmts[1]));
        assert_eq!(stmts[0].shared_loops(&stmts[1]), 1);
    }

    #[test]
    fn accesses() {
        let p = ts_program();
        let stmts = p.statements();
        let acc1 = stmts[0].accesses();
        // write b[j]; reads b[j], L[j][j]
        assert_eq!(acc1.len(), 3);
        assert!(acc1[0].1);
        assert_eq!(acc1[0].0.array, "b");
        assert_eq!(acc1[2].0.array, "L");
        let acc2 = stmts[1].accesses();
        assert_eq!(acc2.len(), 4);
    }

    #[test]
    fn display_roundtrips_visually() {
        let p = ts_program();
        let s = p.to_string();
        assert!(s.contains("program ts(N)"));
        assert!(s.contains("for j in 0..N"));
        assert!(s.contains("for i in j + 1..N"));
        assert!(s.contains("b[j] = (b[j] / L[j][j]);"));
    }

    #[test]
    fn matrices_listed() {
        let p = ts_program();
        let ms = p.matrices();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "L");
    }

    #[test]
    fn validation_accepts_good_programs() {
        ts_program().validate().unwrap();
    }

    #[test]
    fn validation_catches_undeclared_arrays() {
        let mut p = ts_program();
        p.arrays.retain(|a| a.name != "b");
        let err = p.validate().unwrap_err();
        assert!(err.0.contains("\"b\""), "{err}");
    }

    #[test]
    fn validation_catches_out_of_scope_vars() {
        let mut p = ts_program();
        // Replace S1's index with an undefined variable.
        if let Node::Loop(l) = &mut p.body[0] {
            if let Node::Stmt(s) = &mut l.body[0] {
                s.lhs.idxs[0] = AffineExpr::var("zz");
            }
        }
        let err = p.validate().unwrap_err();
        assert!(err.0.contains("zz"), "{err}");
    }

    #[test]
    fn validation_catches_wrong_arity() {
        let mut p = ts_program();
        if let Node::Loop(l) = &mut p.body[0] {
            if let Node::Stmt(s) = &mut l.body[0] {
                s.lhs.idxs.push(AffineExpr::var("j")); // vector with 2 idxs
            }
        }
        let err = p.validate().unwrap_err();
        assert!(err.0.contains("indices"), "{err}");
    }
}
