//! Dependence analysis: flow, anti and output dependence classes as
//! systems of affine inequalities (paper §3).
//!
//! A *dependence class* `D : D(i_s, i_d)ᵀ + d ≥ 0` collects all pairs of
//! statement instances `(i_s, i_d)` such that the source instance executes
//! before the destination in the original program, both touch the same
//! array element, and at least one access is a write. One class is
//! produced per (statement pair, access pair, ordering level); classes
//! whose polyhedron is empty are pruned.

use crate::ast::{Program, StmtInfo};
use crate::expr::AffineExpr;
use bernoulli_polyhedra::{Constraint, LinExpr, System};
use std::collections::HashMap;

/// The kind of a dependence (by the access pair that causes it).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepKind {
    /// write → read
    Flow,
    /// read → write
    Anti,
    /// write → write
    Output,
}

/// One dependence class.
#[derive(Clone, Debug)]
pub struct DepClass {
    /// Source statement id.
    pub src: usize,
    /// Destination statement id.
    pub dst: usize,
    pub kind: DepKind,
    /// The array through which the dependence flows.
    pub array: String,
    /// `Some(l)`: carried by shared loop level `l` (source iteration
    /// strictly smaller at `l`, equal above). `None`: loop-independent
    /// (all shared loops equal; source precedes destination textually).
    pub level: Option<usize>,
    /// Polyhedron over `[src loop vars "@s", dst loop vars "@d", params]`.
    pub sys: System,
    /// Indices of the source loop variables within `sys`.
    pub src_vars: Vec<usize>,
    /// Indices of the destination loop variables within `sys`.
    pub dst_vars: Vec<usize>,
    /// Indices of the parameters within `sys`.
    pub params: Vec<usize>,
    /// Index of the source access within the source statement's access
    /// list (0 = the write).
    pub src_access: usize,
    /// Index of the destination access within its statement's list.
    pub dst_access: usize,
}

impl DepClass {
    /// Human-readable one-line summary.
    pub fn describe(&self) -> String {
        format!(
            "S{} -> S{} ({:?} on {:?}, {})",
            self.src + 1,
            self.dst + 1,
            self.kind,
            self.array,
            match self.level {
                Some(l) => format!("carried at level {l}"),
                None => "loop-independent".to_string(),
            }
        )
    }
}

/// Computes all (non-empty) dependence classes of the program.
pub fn analyze(p: &Program) -> Vec<DepClass> {
    let stmts = p.statements();
    let mut out = Vec::new();
    for s in &stmts {
        for d in &stmts {
            for (sai, (sa, s_write)) in s.accesses().iter().enumerate() {
                for (dai, (da, d_write)) in d.accesses().iter().enumerate() {
                    if sa.array != da.array || (!s_write && !d_write) {
                        continue;
                    }
                    let kind = match (s_write, d_write) {
                        (true, true) => DepKind::Output,
                        (true, false) => DepKind::Flow,
                        (false, true) => DepKind::Anti,
                        (false, false) => unreachable!(),
                    };
                    out.extend(classes_for_pair(
                        p, s, d, &sa.idxs, &da.idxs, kind, &sa.array, sai, dai,
                    ));
                }
            }
        }
    }
    out
}

/// Builds the dependence classes for one (src stmt, dst stmt, access pair).
#[allow(clippy::too_many_arguments)]
fn classes_for_pair(
    p: &Program,
    s: &StmtInfo,
    d: &StmtInfo,
    s_idx: &[AffineExpr],
    d_idx: &[AffineExpr],
    kind: DepKind,
    array: &str,
    src_access: usize,
    dst_access: usize,
) -> Vec<DepClass> {
    let shared = s.shared_loops(d);
    let mut out = Vec::new();
    // One class per carrying level, plus the loop-independent case when
    // the source precedes the destination textually.
    for level in 0..shared {
        if let Some(mut c) = build_class(p, s, d, s_idx, d_idx, kind, array, Some(level)) {
            c.src_access = src_access;
            c.dst_access = dst_access;
            out.push(c);
        }
    }
    if s.before(d) {
        if let Some(mut c) = build_class(p, s, d, s_idx, d_idx, kind, array, None) {
            c.src_access = src_access;
            c.dst_access = dst_access;
            out.push(c);
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn build_class(
    p: &Program,
    s: &StmtInfo,
    d: &StmtInfo,
    s_idx: &[AffineExpr],
    d_idx: &[AffineExpr],
    kind: DepKind,
    array: &str,
    level: Option<usize>,
) -> Option<DepClass> {
    // Variable layout: src loops "@s", dst loops "@d", params.
    let mut names: Vec<String> = Vec::new();
    let src_vars: Vec<usize> = s
        .loops
        .iter()
        .map(|(v, _, _)| {
            names.push(format!("{v}@s"));
            names.len() - 1
        })
        .collect();
    let dst_vars: Vec<usize> = d
        .loops
        .iter()
        .map(|(v, _, _)| {
            names.push(format!("{v}@d"));
            names.len() - 1
        })
        .collect();
    let params: Vec<usize> = p
        .params
        .iter()
        .map(|v| {
            names.push(v.clone());
            names.len() - 1
        })
        .collect();
    let n = names.len();
    let index: HashMap<String, usize> = names
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), i))
        .collect();
    let mut sys = System::new(names);

    // Bound constraints for both instances. Bounds may reference outer
    // loop variables of the same instance and parameters.
    let suffix_s = |e: &AffineExpr| rename_instance(e, p, s, "@s");
    let suffix_d = |e: &AffineExpr| rename_instance(e, p, d, "@d");
    for (k, (v, lo, hi)) in s.loops.iter().enumerate() {
        let var = LinExpr::var(n, src_vars[k]);
        let _ = v;
        sys.add_ge(&var, &suffix_s(lo).to_linexpr(n, &index));
        let hi_e = suffix_s(hi).to_linexpr(n, &index);
        let one = LinExpr::constant(n, 1);
        sys.add(Constraint::ge0(&(&hi_e - &var) - &one)); // var <= hi - 1
    }
    for (k, (v, lo, hi)) in d.loops.iter().enumerate() {
        let var = LinExpr::var(n, dst_vars[k]);
        let _ = v;
        sys.add_ge(&var, &suffix_d(lo).to_linexpr(n, &index));
        let hi_e = suffix_d(hi).to_linexpr(n, &index);
        let one = LinExpr::constant(n, 1);
        sys.add(Constraint::ge0(&(&hi_e - &var) - &one));
    }

    // Access equality per dimension.
    debug_assert_eq!(s_idx.len(), d_idx.len());
    for (se, de) in s_idx.iter().zip(d_idx) {
        sys.add_eq(
            &suffix_s(se).to_linexpr(n, &index),
            &suffix_d(de).to_linexpr(n, &index),
        );
    }

    // Ordering constraints.
    match level {
        Some(l) => {
            for k in 0..l {
                sys.add_eq(&LinExpr::var(n, src_vars[k]), &LinExpr::var(n, dst_vars[k]));
            }
            // src_l + 1 <= dst_l
            let lhs = &LinExpr::var(n, dst_vars[l]) - &LinExpr::var(n, src_vars[l]);
            sys.add(Constraint::ge0(&lhs - &LinExpr::constant(n, 1)));
        }
        None => {
            let shared = s.shared_loops(d);
            for k in 0..shared {
                sys.add_eq(&LinExpr::var(n, src_vars[k]), &LinExpr::var(n, dst_vars[k]));
            }
        }
    }

    if sys.is_empty() {
        return None;
    }
    Some(DepClass {
        src: s.id,
        dst: d.id,
        kind,
        array: array.to_string(),
        level,
        sys,
        src_vars,
        dst_vars,
        params,
        src_access: 0,
        dst_access: 0,
    })
}

/// Renames the loop variables of an expression with an instance suffix,
/// leaving parameters untouched.
fn rename_instance(e: &AffineExpr, p: &Program, stmt: &StmtInfo, suffix: &str) -> AffineExpr {
    e.rename(|v| {
        if p.params.iter().any(|q| q == v) {
            v.to_string()
        } else {
            debug_assert!(
                stmt.loops.iter().any(|(lv, _, _)| lv == v),
                "variable {v} is neither a loop var nor a parameter"
            );
            format!("{v}{suffix}")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const TS: &str = r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
    "#;

    #[test]
    fn ts_has_the_papers_dependences() {
        let p = parse_program(TS).unwrap();
        let classes = analyze(&p);
        assert!(!classes.is_empty());

        // D1 (paper): S1 writes b[j], S2 reads b[j]: flow S1 -> S2 with
        // j1 = j2 (loop-independent: same j iteration, S1 textually first).
        let d1 = classes
            .iter()
            .find(|c| c.src == 0 && c.dst == 1 && c.kind == DepKind::Flow && c.level.is_none());
        assert!(d1.is_some(), "missing D1 among {:?}", summaries(&classes));
        // Its polyhedron must contain (j@s, j@d, i@d, N) = (1, 1, 2, 5)
        // and exclude j@s != j@d.
        let d1 = d1.unwrap();
        assert!(d1.sys.contains_int(&[1, 1, 2, 5]));
        assert!(!d1.sys.contains_int(&[1, 2, 3, 5]));

        // D2 (paper): S2 writes b[i], S1 reads b[j] with j1 = i2, carried
        // by the outer j loop (j2 < j1): here the *source* is S2.
        let d2 = classes
            .iter()
            .find(|c| c.src == 1 && c.dst == 0 && c.kind == DepKind::Flow && c.level == Some(0));
        assert!(d2.is_some(), "missing D2 among {:?}", summaries(&classes));
        // vars: [j@s, i@s, j@d, N]; point j@s=0, i@s=2, j@d=2, N=5 is in D2.
        let d2 = d2.unwrap();
        assert!(d2.sys.contains_int(&[0, 2, 2, 5]));
        // i@s must equal j@d:
        assert!(!d2.sys.contains_int(&[0, 2, 1, 5]));
    }

    fn summaries(cs: &[DepClass]) -> Vec<String> {
        cs.iter().map(|c| c.describe()).collect()
    }

    #[test]
    fn empty_classes_pruned() {
        // A program with no loop-carried dependences: x[i] = x[i] * 2.
        let p = parse_program(
            "program scale(N) { inout vector x[N]; for i in 0..N { x[i] = x[i] * 2; } }",
        )
        .unwrap();
        let classes = analyze(&p);
        // Flow/anti/output within the same instance require src before dst
        // or a carrying level; x[i] accesses in different iterations touch
        // different elements, so nothing survives.
        assert!(classes.is_empty(), "{:?}", summaries(&classes));
    }

    #[test]
    fn reduction_has_carried_dependences() {
        let p = parse_program(
            "program acc(N) { inout vector s[1]; for i in 0..N { s[0] = s[0] + 1; } }",
        )
        .unwrap();
        let classes = analyze(&p);
        // s[0] written and read every iteration: flow, anti and output all
        // carried at level 0.
        assert!(classes
            .iter()
            .any(|c| c.kind == DepKind::Flow && c.level == Some(0)));
        assert!(classes
            .iter()
            .any(|c| c.kind == DepKind::Anti && c.level == Some(0)));
        assert!(classes
            .iter()
            .any(|c| c.kind == DepKind::Output && c.level == Some(0)));
    }

    #[test]
    fn mvm_reduction_only_on_y() {
        let p = parse_program(
            r#"program mvm(M, N) {
                 in matrix A[M][N];
                 in vector x[N];
                 inout vector y[M];
                 for i in 0..M { for j in 0..N {
                   y[i] = y[i] + A[i][j] * x[j];
                 } }
               }"#,
        )
        .unwrap();
        let classes = analyze(&p);
        assert!(classes.iter().all(|c| c.array == "y"));
        // Carried at the inner level only (same i, different j).
        assert!(classes.iter().any(|c| c.level == Some(1)));
        assert!(classes.iter().all(|c| c.level.is_some()));
        // No dependence carried by i alone (different i → different y[i])
        assert!(classes.iter().all(|c| c.level != Some(0)));
    }

    #[test]
    fn descriptions_render() {
        let p = parse_program(TS).unwrap();
        let classes = analyze(&p);
        for c in &classes {
            let s = c.describe();
            assert!(s.contains("->"));
        }
    }
}
