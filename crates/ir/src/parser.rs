//! Concrete syntax for dense-matrix programs.
//!
//! ```text
//! program ts(N) {
//!   in matrix L[N][N];
//!   inout vector b[N];
//!   for j in 0..N {
//!     b[j] = b[j] / L[j][j];
//!     for i in j+1..N {
//!       b[i] = b[i] - L[i][j] * b[j];
//!     }
//!   }
//! }
//! ```
//!
//! Index expressions must be affine in loop variables and parameters;
//! right-hand sides are arbitrary `+ - * /` scalar expressions over array
//! reads and literals. `//` comments run to end of line.

use crate::ast::*;
use crate::expr::AffineExpr;
use std::fmt;

/// Parse failure with a human-readable message and source position.
///
/// `line` and `column` are 1-based; [`parse_program`] fills them in from
/// the byte `offset` before returning, so every surfaced error carries a
/// usable position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub msg: String,
    pub offset: usize,
    pub line: usize,
    pub column: usize,
}

impl ParseError {
    fn at(msg: impl Into<String>, offset: usize) -> ParseError {
        ParseError {
            msg: msg.into(),
            offset,
            line: 0,
            column: 0,
        }
    }

    /// Converts the byte offset into a 1-based line/column pair against
    /// `src` (an end-of-input offset points just past the last byte).
    fn locate(mut self, src: &str) -> ParseError {
        let off = self.offset.min(src.len());
        self.offset = off;
        let before = &src.as_bytes()[..off];
        self.line = 1 + before.iter().filter(|&&b| b == b'\n').count();
        let line_start = before
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap_or(0);
        self.column = 1 + off - line_start;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "parse error at line {}, column {}: {}",
                self.line, self.column, self.msg
            )
        } else {
            write!(f, "parse error at byte {}: {}", self.offset, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Sym(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier {s:?}"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v) => write!(f, "float {v}"),
            Tok::Sym(s) => write!(f, "{s:?}"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(msg, self.pos)
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // line comments
            if self.pos + 1 < self.src.len() && &self.src[self.pos..self.pos + 2] == b"//" {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<Option<(Tok, usize)>, ParseError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let start = self.pos;
        let b = self.src[self.pos];
        if b.is_ascii_alphabetic() || b == b'_' {
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            // The matched bytes are ASCII by construction, so the lossy
            // conversion is exact.
            let s = String::from_utf8_lossy(&self.src[start..self.pos]);
            return Ok(Some((Tok::Ident(s.into_owned()), start)));
        }
        if b.is_ascii_digit() {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            // A float only if '.' followed by a digit (so `0..N` lexes as
            // Int, "..", Ident).
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'.'
                && self.src[self.pos + 1].is_ascii_digit()
            {
                self.pos += 1;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let s = String::from_utf8_lossy(&self.src[start..self.pos]);
                let v: f64 = s.parse().map_err(|_| self.error("bad float literal"))?;
                return Ok(Some((Tok::Float(v), start)));
            }
            let s = String::from_utf8_lossy(&self.src[start..self.pos]);
            let v: i64 = s.parse().map_err(|_| self.error("bad integer literal"))?;
            return Ok(Some((Tok::Int(v), start)));
        }
        // multi-char symbols first
        if self.pos + 1 < self.src.len() && &self.src[self.pos..self.pos + 2] == b".." {
            self.pos += 2;
            return Ok(Some((Tok::Sym(".."), start)));
        }
        let sym = match b {
            b'(' => "(",
            b')' => ")",
            b'{' => "{",
            b'}' => "}",
            b'[' => "[",
            b']' => "]",
            b';' => ";",
            b',' => ",",
            b'=' => "=",
            b'+' => "+",
            b'-' => "-",
            b'*' => "*",
            b'/' => "/",
            other => {
                return Err(self.error(format!("unexpected character {:?}", other as char)));
            }
        };
        self.pos += 1;
        Ok(Some((Tok::Sym(sym), start)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.i).map(|&(_, o)| o).unwrap_or(usize::MAX)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(msg, self.offset())
    }

    /// Error anchored at the token just consumed (the offending one).
    fn error_at_last(&self, msg: impl Into<String>) -> ParseError {
        let off = self
            .toks
            .get(self.i.saturating_sub(1))
            .map(|&(_, o)| o)
            .unwrap_or(usize::MAX);
        ParseError::at(msg, off)
    }

    fn bump(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.i)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.i += 1;
        Ok(t)
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.bump()? {
            Tok::Sym(x) if x == s => Ok(()),
            other => Err(self.error_at_last(format!("expected {s:?}, found {other}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error_at_last(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(self.error_at_last(format!("expected keyword {kw:?}, found identifier {id:?}")))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(x)) if *x == s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    // affine := aterm (('+'|'-') aterm)*
    // aterm  := int | int '*' ident | ident | ident '*' int | '-' aterm | '(' affine ')'
    fn affine(&mut self) -> Result<AffineExpr, ParseError> {
        let mut acc = self.affine_term()?;
        loop {
            if self.eat_sym("+") {
                let t = self.affine_term()?;
                acc = &acc + &t;
            } else if self.peek() == Some(&Tok::Sym("-"))
                && self.toks.get(self.i + 1).map(|(t, _)| t) != Some(&Tok::Sym("-"))
            {
                self.i += 1;
                let t = self.affine_term()?;
                acc = &acc - &t;
            } else {
                break;
            }
        }
        Ok(acc)
    }

    fn affine_term(&mut self) -> Result<AffineExpr, ParseError> {
        match self.bump()? {
            Tok::Int(v) => {
                if self.eat_sym("*") {
                    let id = self.expect_ident()?;
                    Ok(AffineExpr::from_terms(&[(&id, v)], 0))
                } else {
                    Ok(AffineExpr::constant(v))
                }
            }
            Tok::Ident(id) => {
                if self.eat_sym("*") {
                    match self.bump()? {
                        Tok::Int(v) => Ok(AffineExpr::from_terms(&[(&id, v)], 0)),
                        other => Err(self.error_at_last(format!(
                            "affine multiplier must be an integer, found {other}"
                        ))),
                    }
                } else {
                    Ok(AffineExpr::var(&id))
                }
            }
            Tok::Sym("-") => {
                let t = self.affine_term()?;
                Ok(-&t)
            }
            Tok::Sym("(") => {
                let e = self.affine()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            other => Err(self.error_at_last(format!("expected affine expression, found {other}"))),
        }
    }

    fn array_ref(&mut self, name: String) -> Result<LhsRef, ParseError> {
        let mut idxs = Vec::new();
        while self.eat_sym("[") {
            idxs.push(self.affine()?);
            self.expect_sym("]")?;
        }
        if idxs.is_empty() {
            return Err(self.error(format!("array reference {name:?} needs at least one index")));
        }
        Ok(LhsRef { array: name, idxs })
    }

    // value expression with precedence: unary - > * / > + -
    fn value(&mut self) -> Result<ValueExpr, ParseError> {
        let mut acc = self.value_term()?;
        loop {
            if self.eat_sym("+") {
                let t = self.value_term()?;
                acc = ValueExpr::Add(Box::new(acc), Box::new(t));
            } else if self.eat_sym("-") {
                let t = self.value_term()?;
                acc = ValueExpr::Sub(Box::new(acc), Box::new(t));
            } else {
                break;
            }
        }
        Ok(acc)
    }

    fn value_term(&mut self) -> Result<ValueExpr, ParseError> {
        let mut acc = self.value_atom()?;
        loop {
            if self.eat_sym("*") {
                let t = self.value_atom()?;
                acc = ValueExpr::Mul(Box::new(acc), Box::new(t));
            } else if self.eat_sym("/") {
                let t = self.value_atom()?;
                acc = ValueExpr::Div(Box::new(acc), Box::new(t));
            } else {
                break;
            }
        }
        Ok(acc)
    }

    fn value_atom(&mut self) -> Result<ValueExpr, ParseError> {
        match self.bump()? {
            Tok::Float(v) => Ok(ValueExpr::Const(v)),
            Tok::Int(v) => Ok(ValueExpr::Const(v as f64)),
            Tok::Sym("-") => {
                // Fold negated literals so printing and parsing agree.
                match self.value_atom()? {
                    ValueExpr::Const(c) => Ok(ValueExpr::Const(-c)),
                    other => Ok(ValueExpr::Neg(Box::new(other))),
                }
            }
            Tok::Sym("(") => {
                let e = self.value()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Ident(name) => Ok(ValueExpr::Read(self.array_ref(name)?)),
            other => Err(self.error_at_last(format!("expected expression, found {other}"))),
        }
    }

    fn node(&mut self) -> Result<Node, ParseError> {
        if self.peek() == Some(&Tok::Ident("for".to_string())) {
            self.i += 1;
            let var = self.expect_ident()?;
            self.expect_keyword("in")?;
            let lo = self.affine()?;
            self.expect_sym("..")?;
            let hi = self.affine()?;
            self.expect_sym("{")?;
            let mut body = Vec::new();
            while self.peek() != Some(&Tok::Sym("}")) {
                body.push(self.node()?);
            }
            self.expect_sym("}")?;
            return Ok(Node::Loop(Loop { var, lo, hi, body }));
        }
        // statement: ref = value ;
        let name = self.expect_ident()?;
        let lhs = self.array_ref(name)?;
        self.expect_sym("=")?;
        let rhs = self.value()?;
        self.expect_sym(";")?;
        Ok(Node::Stmt(Statement { lhs, rhs }))
    }

    fn decl(&mut self) -> Result<ArrayDecl, ParseError> {
        let first = self.expect_ident()?;
        let (role, kind_word) = match first.as_str() {
            "in" => (Role::In, self.expect_ident()?),
            "out" => (Role::Out, self.expect_ident()?),
            "inout" => (Role::InOut, self.expect_ident()?),
            other => (Role::InOut, other.to_string()),
        };
        let kind = match kind_word.as_str() {
            "matrix" => ArrayKind::Matrix,
            "vector" => ArrayKind::Vector,
            other => {
                return Err(self.error(format!("expected matrix/vector, found {other:?}")));
            }
        };
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.eat_sym("[") {
            dims.push(self.affine()?);
            self.expect_sym("]")?;
        }
        let need = match kind {
            ArrayKind::Matrix => 2,
            ArrayKind::Vector => 1,
        };
        if dims.len() != need {
            return Err(self.error(format!(
                "{name:?}: expected {need} dimension(s), found {}",
                dims.len()
            )));
        }
        self.expect_sym(";")?;
        Ok(ArrayDecl {
            name,
            kind,
            role,
            dims,
        })
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.expect_keyword("program")?;
        let name = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::Sym(")")) {
            loop {
                params.push(self.expect_ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        self.expect_sym("{")?;
        let mut arrays = Vec::new();
        // declarations until a `for` or statement shows up
        while let Some(Tok::Ident(w)) = self.peek() {
            if matches!(w.as_str(), "in" | "out" | "inout" | "matrix" | "vector") {
                arrays.push(self.decl()?);
            } else {
                break;
            }
        }
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::Sym("}")) {
            body.push(self.node()?);
        }
        self.expect_sym("}")?;
        if self.i != self.toks.len() {
            return Err(self.error("trailing input after program"));
        }
        Ok(Program {
            name,
            params,
            arrays,
            body,
        })
    }
}

/// Parses the mini-language into a [`Program`]. Errors carry a 1-based
/// line/column position and name the offending token.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_inner(src).map_err(|e| e.locate(src))
}

fn parse_inner(src: &str) -> Result<Program, ParseError> {
    let mut lex = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lex.next()? {
        toks.push(t);
    }
    Parser { toks, i: 0 }.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TS: &str = r#"
        program ts(N) {
          in matrix L[N][N];
          inout vector b[N];
          for j in 0..N {
            b[j] = b[j] / L[j][j];
            for i in j+1..N {
              b[i] = b[i] - L[i][j] * b[j];
            }
          }
        }
    "#;

    #[test]
    fn parses_triangular_solve() -> Result<(), ParseError> {
        let p = parse_program(TS)?;
        assert_eq!(p.name, "ts");
        assert_eq!(p.params, vec!["N"]);
        assert_eq!(p.arrays.len(), 2);
        assert_eq!(p.arrays[0].role, Role::In);
        assert_eq!(p.arrays[1].role, Role::InOut);
        let stmts = p.statements();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[1].loop_vars(), vec!["j", "i"]);
        // inner loop lower bound is j + 1
        assert_eq!(stmts[1].loops[1].1, AffineExpr::from_terms(&[("j", 1)], 1));
        Ok(())
    }

    #[test]
    fn parses_mvm() -> Result<(), ParseError> {
        let src = r#"
            program mvm(M, N) {
              in matrix A[M][N];
              in vector x[N];
              inout vector y[M];
              for i in 0..M {
                for j in 0..N {
                  y[i] = y[i] + A[i][j] * x[j];
                }
              }
            }
        "#;
        let p = parse_program(src)?;
        assert_eq!(p.params, vec!["M", "N"]);
        let stmts = p.statements();
        assert_eq!(stmts.len(), 1);
        assert_eq!(stmts[0].accesses().len(), 4);
        Ok(())
    }

    #[test]
    fn comments_and_floats() -> Result<(), ParseError> {
        let src = r#"
            program scale(N) { // header comment
              inout vector x[N];
              for i in 0..N {
                x[i] = x[i] * 2.5; // body comment
              }
            }
        "#;
        let p = parse_program(src)?;
        let stmts = p.statements();
        match &stmts[0].stmt.rhs {
            ValueExpr::Mul(_, b) => assert_eq!(**b, ValueExpr::Const(2.5)),
            other => panic!("unexpected rhs {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn affine_coefficients() -> Result<(), ParseError> {
        let src = r#"
            program p(N) {
              inout vector x[N];
              for i in 0..N {
                x[2*i - 1 + N] = 1;
              }
            }
        "#;
        let p = parse_program(src)?;
        let idx = &p.statements()[0].stmt.lhs.idxs[0];
        assert_eq!(idx, &AffineExpr::from_terms(&[("i", 2), ("N", 1)], -1));
        Ok(())
    }

    #[test]
    fn operator_precedence() -> Result<(), ParseError> {
        let src = r#"
            program p(N) {
              inout vector x[N];
              x[0] = 1 + 2 * 3 - 4 / 2;
            }
        "#;
        let p = parse_program(src)?;
        let rhs = &p.statements()[0].stmt.rhs;
        // ((1 + (2*3)) - (4/2))
        let shown = rhs.to_string();
        assert_eq!(shown, "((1 + (2 * 3)) - (4 / 2))");
        Ok(())
    }

    #[test]
    fn error_reporting() {
        let e = parse_program("program p() { for i in 0..N ").unwrap_err();
        assert!(e.msg.contains("unexpected end"));
        let e2 = parse_program("program p() { in matrix A[N]; }").unwrap_err();
        assert!(e2.msg.contains("expected 2 dimension"));
        let e3 = parse_program("program p() { x = 1; }").unwrap_err();
        assert!(e3.msg.contains("at least one index"));
    }

    #[test]
    fn errors_carry_line_and_column() {
        // The stray `]` sits on line 3, column 20 (1-based).
        let src = "program p(N) {\n  inout vector x[N];\n  for i in 0..N { x]i] = 0; }\n}";
        let e = parse_program(src).unwrap_err();
        assert_eq!((e.line, e.column), (3, 20), "{e}");
        assert_eq!(&src[e.offset..e.offset + 1], "]");
        let shown = e.to_string();
        assert!(shown.contains("line 3"), "{shown}");
        assert!(shown.contains("column 20"), "{shown}");
    }

    #[test]
    fn errors_name_the_offending_token() {
        // `=` where an index expression must continue: the message names
        // the unexpected token and points at its position.
        let src = "program p(N) {\n  inout vector x[N];\n  x[0 = 1;\n}";
        let e = parse_program(src).unwrap_err();
        assert!(e.msg.contains("\"=\""), "{e}");
        assert_eq!((e.line, e.column), (3, 7), "{e}");
        // A wrong keyword is quoted too.
        let e2 = parse_program("module p() {}").unwrap_err();
        assert!(e2.msg.contains("\"module\""), "{e2}");
        assert_eq!((e2.line, e2.column), (1, 1), "{e2}");
    }

    #[test]
    fn end_of_input_error_points_past_last_byte() {
        let src = "program p() { for i in 0..N ";
        let e = parse_program(src).unwrap_err();
        assert_eq!(e.offset, src.len());
        assert_eq!((e.line, e.column), (1, src.len() + 1), "{e}");
    }

    #[test]
    fn range_lexing() -> Result<(), ParseError> {
        // `0..N` must not lex as a float.
        let p = parse_program("program p(N) { inout vector x[N]; for i in 0..N { x[i] = 0; } }")?;
        assert_eq!(p.statements().len(), 1);
        Ok(())
    }
}
