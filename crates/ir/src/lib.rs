//! The high-level API: dense matrix programs.
//!
//! Algorithm designers write kernels *as if every matrix were dense*
//! (paper §1–2, Fig. 4); this crate represents such programs and provides
//! everything the synthesis pipeline needs from them:
//!
//! - [`AffineExpr`]: affine index expressions over loop variables and
//!   symbolic size parameters.
//! - [`Program`]: imperfectly-nested loop trees whose leaves are
//!   assignment statements with arbitrary scalar right-hand sides
//!   ([`ValueExpr`]).
//! - [`parse_program`]: a small concrete syntax, so kernels read like the
//!   paper's examples:
//!
//!   ```text
//!   program ts(N) {
//!     in matrix L[N][N];
//!     inout vector b[N];
//!     for j in 0..N {
//!       b[j] = b[j] / L[j][j];
//!       for i in j+1..N {
//!         b[i] = b[i] - L[i][j] * b[j];
//!       }
//!     }
//!   }
//!   ```
//!
//! - [`exec::run_dense`]: the reference executor — ground truth every
//!   synthesized plan is tested against.
//! - [`deps::analyze`]: dependence classes as systems of affine
//!   inequalities (paper §3).

pub mod ast;
pub mod deps;
pub mod exec;
pub mod expr;
pub mod parser;

pub use ast::{
    ArrayDecl, ArrayKind, LhsRef, Loop, Node, Program, Role, Statement, StmtInfo, ValidateError,
    ValueExpr,
};
pub use deps::{analyze, DepClass, DepKind};
pub use exec::{run_dense, DenseEnv, ExecError};
pub use expr::AffineExpr;
pub use parser::{parse_program, ParseError};

/// Everything that can go wrong on this crate's library paths, as one
/// typed error: syntax ([`ParseError`]), semantics ([`ValidateError`]),
/// or reference execution ([`ExecError`]).
#[derive(Clone, Debug, PartialEq)]
pub enum IrError {
    Parse(ParseError),
    Validate(ValidateError),
    Exec(ExecError),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::Parse(e) => e.fmt(f),
            IrError::Validate(e) => e.fmt(f),
            IrError::Exec(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for IrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IrError::Parse(e) => Some(e),
            IrError::Validate(e) => Some(e),
            IrError::Exec(e) => Some(e),
        }
    }
}

impl From<ParseError> for IrError {
    fn from(e: ParseError) -> IrError {
        IrError::Parse(e)
    }
}

impl From<ValidateError> for IrError {
    fn from(e: ValidateError) -> IrError {
        IrError::Validate(e)
    }
}

impl From<ExecError> for IrError {
    fn from(e: ExecError) -> IrError {
        IrError::Exec(e)
    }
}

/// Parses *and validates* a program: the one-call front end a compiler
/// session uses, returning a typed [`IrError`] either way.
pub fn parse_valid_program(src: &str) -> Result<Program, IrError> {
    let p = parse_program(src)?;
    p.validate()?;
    Ok(p)
}
