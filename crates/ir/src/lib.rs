//! The high-level API: dense matrix programs.
//!
//! Algorithm designers write kernels *as if every matrix were dense*
//! (paper §1–2, Fig. 4); this crate represents such programs and provides
//! everything the synthesis pipeline needs from them:
//!
//! - [`AffineExpr`]: affine index expressions over loop variables and
//!   symbolic size parameters.
//! - [`Program`]: imperfectly-nested loop trees whose leaves are
//!   assignment statements with arbitrary scalar right-hand sides
//!   ([`ValueExpr`]).
//! - [`parse_program`]: a small concrete syntax, so kernels read like the
//!   paper's examples:
//!
//!   ```text
//!   program ts(N) {
//!     in matrix L[N][N];
//!     inout vector b[N];
//!     for j in 0..N {
//!       b[j] = b[j] / L[j][j];
//!       for i in j+1..N {
//!         b[i] = b[i] - L[i][j] * b[j];
//!       }
//!     }
//!   }
//!   ```
//!
//! - [`exec::run_dense`]: the reference executor — ground truth every
//!   synthesized plan is tested against.
//! - [`deps::analyze`]: dependence classes as systems of affine
//!   inequalities (paper §3).

pub mod ast;
pub mod deps;
pub mod exec;
pub mod expr;
pub mod parser;

pub use ast::{
    ArrayDecl, ArrayKind, LhsRef, Loop, Node, Program, Role, Statement, StmtInfo, ValueExpr,
};
pub use deps::{analyze, DepClass, DepKind};
pub use exec::{run_dense, DenseEnv};
pub use expr::AffineExpr;
pub use parser::{parse_program, ParseError};
