//! Affine index expressions over named variables.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression `Σ coeff·var + cst` over loop variables and
/// symbolic parameters, both referred to by name.
///
/// Kept in a sorted map so structurally-equal expressions compare equal.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// Non-zero coefficients by variable name.
    terms: BTreeMap<String, i64>,
    /// Constant term.
    cst: i64,
}

impl AffineExpr {
    /// The constant expression.
    pub fn constant(c: i64) -> AffineExpr {
        AffineExpr {
            terms: BTreeMap::new(),
            cst: c,
        }
    }

    /// The single variable `name`.
    pub fn var(name: &str) -> AffineExpr {
        let mut terms = BTreeMap::new();
        terms.insert(name.to_string(), 1);
        AffineExpr { terms, cst: 0 }
    }

    /// Builds from explicit terms (zero coefficients dropped).
    pub fn from_terms(terms: &[(&str, i64)], cst: i64) -> AffineExpr {
        let mut e = AffineExpr::constant(cst);
        for &(v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    /// Adds `coeff·var` in place.
    pub fn add_term(&mut self, var: &str, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(var.to_string()).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            self.terms.remove(var);
        }
    }

    /// The coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: &str) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn cst(&self) -> i64 {
        self.cst
    }

    /// Sets the constant term.
    pub fn set_cst(&mut self, c: i64) {
        self.cst = c;
    }

    /// Iterates over `(var, coeff)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Variables appearing with non-zero coefficient.
    pub fn vars(&self) -> Vec<&str> {
        self.terms.keys().map(|s| s.as_str()).collect()
    }

    /// True iff the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// True iff the expression is exactly the single variable `v`.
    pub fn is_var(&self, v: &str) -> bool {
        self.cst == 0 && self.terms.len() == 1 && self.coeff(v) == 1
    }

    /// Evaluates under a variable binding.
    ///
    /// # Panics
    /// Panics if a variable is unbound.
    pub fn eval(&self, env: &HashMap<String, i64>) -> i64 {
        let mut acc = self.cst;
        for (v, c) in &self.terms {
            let x = env
                .get(v)
                .unwrap_or_else(|| panic!("unbound variable {v:?} in affine expression"));
            acc += c * x;
        }
        acc
    }

    /// Substitutes `var := repl`, returning the new expression.
    pub fn substitute(&self, var: &str, repl: &AffineExpr) -> AffineExpr {
        let c = self.coeff(var);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(var);
        for (v, rc) in &repl.terms {
            out.add_term(v, c * rc);
        }
        out.cst += c * repl.cst;
        out
    }

    /// Renames every variable through `f`.
    pub fn rename(&self, f: impl Fn(&str) -> String) -> AffineExpr {
        let mut out = AffineExpr::constant(self.cst);
        for (v, c) in &self.terms {
            out.add_term(&f(v), *c);
        }
        out
    }

    /// Converts to a [`bernoulli_polyhedra::LinExpr`] over the variable
    /// order of a polyhedral system.
    ///
    /// # Panics
    /// Panics if some variable is not present in `var_index`.
    pub fn to_linexpr(
        &self,
        nvars: usize,
        var_index: &HashMap<String, usize>,
    ) -> bernoulli_polyhedra::LinExpr {
        use bernoulli_numeric::Rational;
        let mut e = bernoulli_polyhedra::LinExpr::zero(nvars);
        for (v, c) in &self.terms {
            let idx = *var_index
                .get(v)
                .unwrap_or_else(|| panic!("variable {v:?} missing from system"));
            e.coeffs[idx] += Rational::int(*c as i128);
        }
        e.cst = Rational::int(self.cst as i128);
        e
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                match *c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    c => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else if *c > 0 {
                if *c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}*{v}")?;
                }
            } else if *c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.cst)?;
        } else if self.cst > 0 {
            write!(f, " + {}", self.cst)?;
        } else if self.cst < 0 {
            write!(f, " - {}", -self.cst)?;
        }
        Ok(())
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl Add for &AffineExpr {
    type Output = AffineExpr;
    fn add(self, rhs: &AffineExpr) -> AffineExpr {
        let mut out = self.clone();
        for (v, c) in &rhs.terms {
            out.add_term(v, *c);
        }
        out.cst += rhs.cst;
        out
    }
}

impl Sub for &AffineExpr {
    type Output = AffineExpr;
    fn sub(self, rhs: &AffineExpr) -> AffineExpr {
        let mut out = self.clone();
        for (v, c) in &rhs.terms {
            out.add_term(v, -*c);
        }
        out.cst -= rhs.cst;
        out
    }
}

impl Neg for &AffineExpr {
    type Output = AffineExpr;
    fn neg(self) -> AffineExpr {
        &AffineExpr::constant(0) - self
    }
}

impl Mul<i64> for &AffineExpr {
    type Output = AffineExpr;
    fn mul(self, k: i64) -> AffineExpr {
        let mut out = AffineExpr::constant(self.cst * k);
        for (v, c) in &self.terms {
            out.add_term(v, c * k);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let e = AffineExpr::from_terms(&[("i", 1), ("j", -2)], 3);
        assert_eq!(e.coeff("i"), 1);
        assert_eq!(e.coeff("j"), -2);
        assert_eq!(e.coeff("k"), 0);
        assert_eq!(e.cst(), 3);
        assert!(!e.is_constant());
        assert!(AffineExpr::constant(5).is_constant());
        assert!(AffineExpr::var("i").is_var("i"));
        assert!(!e.is_var("i"));
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut e = AffineExpr::var("i");
        e.add_term("i", -1);
        assert!(e.is_constant());
        assert_eq!(e.vars().len(), 0);
    }

    #[test]
    fn eval() {
        let e = AffineExpr::from_terms(&[("i", 2), ("N", 1)], -1);
        let mut env = HashMap::new();
        env.insert("i".to_string(), 3);
        env.insert("N".to_string(), 10);
        assert_eq!(e.eval(&env), 15);
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn eval_unbound_panics() {
        let e = AffineExpr::var("x");
        e.eval(&HashMap::new());
    }

    #[test]
    fn arithmetic() {
        let i = AffineExpr::var("i");
        let j = AffineExpr::var("j");
        let e = &(&i + &j) - &(&j * 2);
        assert_eq!(e, AffineExpr::from_terms(&[("i", 1), ("j", -1)], 0));
        assert_eq!(-&e, AffineExpr::from_terms(&[("i", -1), ("j", 1)], 0));
    }

    #[test]
    fn substitution() {
        // (2i + j + 1)[i := j + 3] = 2j + 6 + j + 1 = 3j + 7
        let e = AffineExpr::from_terms(&[("i", 2), ("j", 1)], 1);
        let repl = AffineExpr::from_terms(&[("j", 1)], 3);
        assert_eq!(
            e.substitute("i", &repl),
            AffineExpr::from_terms(&[("j", 3)], 7)
        );
        // substituting an absent var is identity
        assert_eq!(e.substitute("z", &repl), e);
    }

    #[test]
    fn rename() {
        let e = AffineExpr::from_terms(&[("i", 1), ("j", 2)], 0);
        let r = e.rename(|v| format!("{v}@s"));
        assert_eq!(r.coeff("i@s"), 1);
        assert_eq!(r.coeff("j@s"), 2);
    }

    #[test]
    fn display() {
        let e = AffineExpr::from_terms(&[("i", 1), ("j", -2)], 1);
        assert_eq!(e.to_string(), "i - 2*j + 1");
        assert_eq!(AffineExpr::constant(0).to_string(), "0");
        assert_eq!(AffineExpr::constant(-4).to_string(), "-4");
    }

    #[test]
    fn to_linexpr() {
        let mut idx = HashMap::new();
        idx.insert("i".to_string(), 0usize);
        idx.insert("N".to_string(), 1usize);
        let e = AffineExpr::from_terms(&[("i", 2), ("N", -1)], 5);
        let le = e.to_linexpr(2, &idx);
        assert_eq!(le.eval_int(&[3, 10]), bernoulli_numeric::Rational::int(1));
    }
}
