//! The paper's running example, end to end: triangular solve on the
//! Jagged Diagonal format (paper Figs. 4, 5, 8, 9).
//!
//! The dense specification walks L by *columns*; JAD offers fast
//! enumeration along its jagged diagonals or indexed access to permuted
//! *rows* — so the compiler must restructure the code, pick the
//! row-indexed perspective, enumerate rows through the inverse
//! permutation, and guard the diagonal division. This example shows each
//! artifact: the dependence classes, the chosen plan, the emitted Rust
//! (the Fig. 9 analogue), and a verified solve.
//!
//! ```text
//! cargo run --example triangular_solve_jad
//! ```

use bernoulli::prelude::*;
use bernoulli_formats::gen;

fn main() -> Result<(), Error> {
    let session = Session::new();
    let spec = kernels::ts();
    println!("=== dense specification (paper Fig. 4) ===\n{spec}\n");

    println!("=== dependence classes (paper §3) ===");
    for line in session.analyze(&spec).describe() {
        println!("  {line}");
    }

    // A lower-triangular operand in JAD.
    let t = gen::structurally_symmetric(300, 1900, 14, 7).lower_triangle_full_diag(1.0);
    let l = Jad::from_triplets(&t);
    let view = l.format_view();
    println!("\n=== JAD index structure (paper §2 / Appendix) ===");
    println!("  {}", view.expr);
    println!(
        "  bounds: {} detected, full diagonal: {}",
        view.bounds.len(),
        view.has_full_diagonal()
    );

    let bound = session.bind(&spec, &[("L", view)])?;
    let kernel = session.compile(&bound)?;
    println!("\n=== synthesized plan (paper Fig. 8 analogue) ===");
    println!("{}", kernel.plan());
    for n in &kernel.best().safety_notes {
        println!("  zero-safety: {n}");
    }

    let code = kernel.emit("ts_jad")?;
    println!("\n=== emitted Rust (paper Fig. 9 analogue) ===\n{code}");

    // Verify against the dense reference.
    let b0 = gen::dense_vector(300, 11);
    let mut env = ExecEnv::new();
    env.set_param("N", 300);
    env.bind_sparse("L", &l);
    env.bind_vec("b", b0.clone());
    kernel.interpret(&mut env)?;
    let got = env.take_vec("b");

    let dense = Dense::from_triplets(&t);
    let mut denv = bernoulli_ir::DenseEnv::new()
        .param("N", 300)
        .vector("b", b0)
        .matrix("L", &dense);
    bernoulli_ir::run_dense(&spec, &mut denv).expect("reference runs");
    let expect = denv.take_vector("b");

    let max_err = got
        .iter()
        .zip(&expect)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("=== verification ===");
    println!("max |synthesized - dense reference| = {max_err:.3e}");
    assert!(max_err < 1e-9);
    println!("OK: the synthesized JAD solve matches the dense semantics.");
    Ok(())
}
