//! Quickstart: synthesize and run sparse matrix–vector multiplication
//! through the staged [`Session`] driver.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bernoulli::prelude::*;

fn main() -> Result<(), Error> {
    // The compiler session owns the caches and the worker pool; every
    // stage below runs on it and every failure surfaces as a typed
    // `bernoulli::Error`.
    let session = Session::new();

    // 1. The dense specification — written as if A were dense (the
    //    high-level API of the paper).
    let spec = kernels::mvm();
    println!("dense specification:\n{spec}\n");

    // 2. A sparse matrix, in CSR.
    let t = Triplets::from_entries(
        4,
        4,
        &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 1, 4.0),
            (2, 2, 5.0),
            (3, 0, 6.0),
            (3, 3, 7.0),
        ],
    );
    let a = Csr::from_triplets(&t);
    println!("CSR index structure: {}", a.format_view().expr);

    // 3. Bind the index structure and synthesize a data-centric plan.
    let bound = session.bind(&spec, &[("A", a.format_view())])?;
    let kernel = session.compile(&bound)?;
    println!("\nsynthesized plan:\n{}", kernel.plan());
    println!(
        "(best of {} legal candidates, {} examined, estimated cost {:.0})",
        kernel.candidates().len(),
        kernel.report().examined,
        kernel.cost()
    );

    // 4. Execute the plan against the real matrix.
    let mut env = ExecEnv::new();
    env.set_param("M", 4).set_param("N", 4);
    env.bind_sparse("A", &a);
    env.bind_vec("x", vec![1.0, 2.0, 3.0, 4.0]);
    env.bind_vec("y", vec![0.0; 4]);
    let stats = kernel.interpret(&mut env)?;
    let y = env.take_vec("y");
    println!("y = A·x = {y:?}");
    println!(
        "({} loop iterations, {} statement executions — one per stored entry)",
        stats.iterations, stats.executions
    );

    assert_eq!(y, vec![7.0, 6.0, 23.0, 34.0]);

    // 5. A second identical compile is served from the session's plan
    //    cache without searching.
    let again = session.compile(&bound)?;
    println!(
        "second compile served from plan cache: {}",
        again.from_cache()
    );
    assert!(again.from_cache());
    Ok(())
}
