//! A tour of the storage formats and their index-structure descriptions
//! (paper Figs. 1, 2, 6, 14), using the paper's example matrix.
//!
//! ```text
//! cargo run --example format_tour
//! ```

use bernoulli::formats::convert::{AnyFormat, FORMAT_NAMES};
use bernoulli::formats::cursor::check_view_conformance;
use bernoulli::prelude::*;

fn main() -> Result<(), Error> {
    // The matrix of the paper's Fig. 1 / Fig. 14:
    //   [a 0 b 0]
    //   [0 c 0 0]
    //   [0 d e 0]
    //   [f 0 g h]
    let t = Triplets::from_entries(
        4,
        4,
        &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 1, 4.0),
            (2, 2, 5.0),
            (3, 0, 6.0),
            (3, 2, 7.0),
            (3, 3, 8.0),
        ],
    );

    println!("matrix (paper Fig. 14a):");
    for r in 0..4 {
        print!("  ");
        for c in 0..4 {
            print!("{:5.1} ", t.get(r, c));
        }
        println!();
    }
    println!();

    // One compiler session compiles MVM for every format; each index
    // structure steers the search toward a different plan shape.
    let session = Session::new();
    let spec = kernels::mvm();

    for &name in FORMAT_NAMES {
        let f = AnyFormat::try_from_triplets(name, &t)?;
        let v = f.as_view().format_view();
        println!("— {name} —");
        println!("  index structure: {}", v.expr);
        let alts = v.alternatives();
        println!(
            "  {} access alternative(s); chains per alternative: {:?}",
            alts.len(),
            alts.iter().map(|a| a.len()).collect::<Vec<_>>()
        );
        for (ai, _) in alts.iter().enumerate() {
            check_view_conformance(f.as_view(), ai)
                .unwrap_or_else(|e| panic!("{name} alternative {ai}: {e}"));
        }
        println!(
            "  view conformance: every alternative enumerates exactly nnz={} entries",
            f.as_view().nnz()
        );
        let kernel = session.compile(&session.bind(&spec, &[("A", v)])?)?;
        let shape = kernel
            .plan()
            .to_string()
            .lines()
            .next()
            .unwrap_or("")
            .trim_start_matches(['/', ' '])
            .to_string();
        println!(
            "  synthesized MVM: cost {:.0}, {} candidate(s), {shape}",
            kernel.cost(),
            kernel.candidates().len()
        );
    }

    // Show the JAD construction details (Fig. 14d).
    let jad = Jad::from_triplets(&t);
    println!("\nJAD construction (paper Fig. 14d):");
    println!(
        "  iperm  = {:?}   (permuted row -> original row)",
        jad.iperm
    );
    println!("  dptr   = {:?}", jad.dptr);
    println!("  colind = {:?}", jad.colind);
    println!("  values = {:?}", jad.values);

    // And DIA for a banded matrix (Fig. 2).
    let band = bernoulli::formats::gen::tridiagonal(5);
    let dia = Dia::from_triplets(&band);
    println!("\nDIA for a tridiagonal 5x5 (paper Fig. 2):");
    println!("  stored diagonals d = r - c: {:?}", dia.diags);
    println!("  per-diagonal offset ranges: {:?}..{:?}", dia.lo, dia.hi);
    Ok(())
}
