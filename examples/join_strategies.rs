//! Common enumerations (paper §4.1): the same sparse dot-product
//! specification synthesized against differently-indexed vector formats,
//! producing a merge join for two sorted vectors and an index/hash join
//! when one side is hashed.
//!
//! ```text
//! cargo run --example join_strategies
//! ```

use bernoulli::formats::formats::sparsevec::{hashvec_format_view, sparsevec_format_view};
use bernoulli::formats::gen;
use bernoulli::prelude::*;
use bernoulli::synth::WorkloadStats;

fn main() {
    let spec = kernels::spdot();
    println!("dense specification:\n{spec}\n");

    let n = 10_000;
    let xa = gen::sparse_vector(n, 300, 1);
    let ya = gen::sparse_vector(n, 500, 2);
    let xs = SparseVec::from_pairs(n, &xa);
    let ys = SparseVec::from_pairs(n, &ya);
    let yh = HashVec::from_pairs(n, &ya);

    // Ground truth.
    let mut dx = vec![0.0; n];
    let mut dy = vec![0.0; n];
    for &(i, v) in &xa {
        dx[i] += v;
    }
    for &(i, v) in &ya {
        dy[i] += v;
    }
    let expect: f64 = dx.iter().zip(&dy).map(|(a, b)| a * b).sum();

    // Workload statistics steer the cost model (paper §4.2): with 300-
    // and 500-entry vectors of logical length 10000, enumerating stored
    // entries beats scanning the dense index range.
    let opts = SynthOptions {
        stats: WorkloadStats::default()
            .with_param("N", n as f64)
            .with_matrix("x", n as f64, 1.0, xa.len() as f64)
            .with_matrix("y", n as f64, 1.0, ya.len() as f64),
        ..SynthOptions::default()
    };

    // Case 1: both vectors sorted -> the compiler merge-joins.
    let s1 = synthesize(
        &spec,
        &[
            ("x", sparsevec_format_view()),
            ("y", sparsevec_format_view()),
        ],
        &opts,
    )
    .expect("sorted+sorted synthesizes");
    println!("=== sorted · sorted ===\n{}", s1.plan);
    let mut env = ExecEnv::new();
    env.set_param("N", n as i64);
    env.bind_sparse("x", &xs);
    env.bind_sparse("y", &ys);
    env.bind_vec("s", vec![0.0]);
    let stats = run_plan(&s1.plan, &mut env).unwrap();
    let got = env.take_vec("s")[0];
    println!(
        "result {got:.6} (expected {expect:.6}); iterations={} searches={}",
        stats.iterations, stats.searches
    );
    assert!((got - expect).abs() < 1e-9);

    // Case 2: one side hashed -> enumerate the sorted side, O(1)-probe
    // the hashed side.
    let s2 = synthesize(
        &spec,
        &[("x", sparsevec_format_view()), ("y", hashvec_format_view())],
        &opts,
    )
    .expect("sorted+hashed synthesizes");
    println!("\n=== sorted · hashed ===\n{}", s2.plan);
    let mut env = ExecEnv::new();
    env.set_param("N", n as i64);
    env.bind_sparse("x", &xs);
    env.bind_sparse("y", &yh);
    env.bind_vec("s", vec![0.0]);
    let stats = run_plan(&s2.plan, &mut env).unwrap();
    let got = env.take_vec("s")[0];
    println!(
        "result {got:.6} (expected {expect:.6}); iterations={} searches={}",
        stats.iterations, stats.searches
    );
    assert!((got - expect).abs() < 1e-9);

    println!("\nBoth strategies agree with the dense semantics.");
}
