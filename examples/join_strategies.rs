//! Common enumerations (paper §4.1): the same sparse dot-product
//! specification synthesized against differently-indexed vector formats,
//! producing a merge join for two sorted vectors and an index/hash join
//! when one side is hashed. One [`Session`] compiles both, so the
//! second search reuses the first's polyhedral memos.
//!
//! ```text
//! cargo run --example join_strategies
//! ```

use bernoulli::formats::formats::sparsevec::{hashvec_format_view, sparsevec_format_view};
use bernoulli::formats::{gen, vector_features};
use bernoulli::prelude::*;

fn main() -> Result<(), Error> {
    let spec = kernels::spdot();
    println!("dense specification:\n{spec}\n");

    let n = 10_000;
    let xa = gen::sparse_vector(n, 300, 1);
    let ya = gen::sparse_vector(n, 500, 2);
    let xs = SparseVec::from_pairs(n, &xa);
    let ys = SparseVec::from_pairs(n, &ya);
    let yh = HashVec::from_pairs(n, &ya);

    // Ground truth.
    let mut dx = vec![0.0; n];
    let mut dy = vec![0.0; n];
    for &(i, v) in &xa {
        dx[i] += v;
    }
    for &(i, v) in &ya {
        dy[i] += v;
    }
    let expect: f64 = dx.iter().zip(&dy).map(|(a, b)| a * b).sum();

    // Workload statistics steer the cost model (paper §4.2): derived
    // from the actual operands, the 300- and 500-entry vectors of
    // logical length 10000 make enumerating stored entries beat
    // scanning the dense index range.
    let session = Session::with_options(SynthOptions {
        stats: WorkloadStats::from_features(&[
            ("x", &vector_features(n, &xa)),
            ("y", &vector_features(n, &ya)),
        ]),
        ..SynthOptions::default()
    });

    // Case 1: both vectors sorted -> the compiler merge-joins.
    let b1 = session.bind(
        &spec,
        &[
            ("x", sparsevec_format_view()),
            ("y", sparsevec_format_view()),
        ],
    )?;
    let k1 = session.compile(&b1)?;
    println!("=== sorted · sorted ===\n{}", k1.plan());
    let mut env = ExecEnv::new();
    env.set_param("N", n as i64);
    env.bind_sparse("x", &xs);
    env.bind_sparse("y", &ys);
    env.bind_vec("s", vec![0.0]);
    let stats = k1.interpret(&mut env)?;
    let got = env.take_vec("s")[0];
    println!(
        "result {got:.6} (expected {expect:.6}); iterations={} searches={}",
        stats.iterations, stats.searches
    );
    assert!((got - expect).abs() < 1e-9);

    // Case 2: one side hashed -> enumerate the sorted side, O(1)-probe
    // the hashed side.
    let b2 = session.bind(
        &spec,
        &[("x", sparsevec_format_view()), ("y", hashvec_format_view())],
    )?;
    let k2 = session.compile(&b2)?;
    println!("\n=== sorted · hashed ===\n{}", k2.plan());
    let mut env = ExecEnv::new();
    env.set_param("N", n as i64);
    env.bind_sparse("x", &xs);
    env.bind_sparse("y", &yh);
    env.bind_vec("s", vec![0.0]);
    let stats = k2.interpret(&mut env)?;
    let got = env.take_vec("s")[0];
    println!(
        "result {got:.6} (expected {expect:.6}); iterations={} searches={}",
        stats.iterations, stats.searches
    );
    assert!((got - expect).abs() < 1e-9);

    // The search keeps the runners-up too: every surviving candidate
    // computes the same value, whatever join strategy it picked.
    println!("\n=== cost-ranked candidates (sorted · sorted) ===");
    for (i, c) in k1.candidates().iter().enumerate() {
        let mut env = ExecEnv::new();
        env.set_param("N", n as i64);
        env.bind_sparse("x", &xs);
        env.bind_sparse("y", &ys);
        env.bind_vec("s", vec![0.0]);
        k1.interpret_candidate(i, &mut env)?;
        let v = env.take_vec("s")[0];
        println!("  #{i}: estimated cost {:.0}, result {v:.6}", c.cost);
        assert!((v - expect).abs() < 1e-9);
    }

    let poly = session.poly_cache_stats();
    println!(
        "\nBoth strategies agree with the dense semantics \
         (session polyhedral caches: {} hits, {} misses).",
        poly.empty_hits + poly.fm_hits,
        poly.empty_misses + poly.fm_misses
    );
    Ok(())
}
