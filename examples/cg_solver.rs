//! The paper's motivating layering (§1): a format-independent iterative
//! method (conjugate gradients) running over kernels for several formats
//! — including the compiler-synthesized ones — on a 2-D Poisson problem.
//!
//! ```text
//! cargo run --release --example cg_solver
//! ```

use bernoulli::blas::{handwritten as hw, solvers, synth};
use bernoulli::formats::gen;
use bernoulli::prelude::*;

fn main() -> Result<(), Error> {
    let k = 48; // 48x48 grid -> n = 2304
    let t = gen::poisson2d(k);
    let n = t.nrows();
    let b = gen::dense_vector(n, 33);
    println!("2-D Poisson, {k}x{k} grid (n = {n}, nnz = {})\n", t.nnz());

    // The same CG code, instantiated with different MVM kernels.
    let csr = Csr::from_triplets(&t);
    let jad = Jad::from_triplets(&t);
    let dia = Dia::from_triplets(&t);

    let run = |label: &str, matvec: &mut dyn FnMut(&[f64], &mut [f64])| {
        let mut x = vec![0.0; n];
        let stats = solvers::cg(matvec, &b, &mut x, 1e-10, 10 * n);
        println!(
            "{label:<26} converged={} iterations={} residual={:.2e}",
            stats.converged, stats.iterations, stats.residual
        );
        assert!(stats.converged);
        x
    };

    let x1 = run("handwritten CSR", &mut |v, out| hw::mvm_csr(&csr, v, out));
    let x2 = run("synthesized CSR", &mut |v, out| {
        synth::mvm_csr(n as i64, n as i64, &csr, v, out)
    });
    let x3 = run("synthesized JAD", &mut |v, out| {
        synth::mvm_jad(n as i64, n as i64, &jad, v, out)
    });
    let x4 = run("synthesized DIA", &mut |v, out| {
        synth::mvm_dia(n as i64, n as i64, &dia, v, out)
    });
    let x5 = run("parallel CSR (4 threads)", &mut |v, out| {
        bernoulli::blas::parallel::par_mvm_csr(&csr, v, out, 4)
    });

    // The same kernel again, but compiled *now* by an embedded compiler
    // session and run through the plan interpreter — the committed
    // `synth::mvm_*` functions above are the emitted form of exactly
    // this plan.
    let session = Session::new();
    let kernel = session.compile(&session.bind(&kernels::mvm(), &[("A", csr.format_view())])?)?;
    let x6 = run("session-compiled CSR", &mut |v, out| {
        let mut env = ExecEnv::new();
        env.set_param("M", n as i64).set_param("N", n as i64);
        env.bind_sparse("A", &csr);
        env.bind_vec("x", v.to_vec());
        env.bind_vec("y", vec![0.0; out.len()]);
        kernel.interpret(&mut env).expect("compiled kernel runs");
        out.copy_from_slice(&env.take_vec("y"));
    });

    // All format instantiations solve the same system.
    for (label, x) in [
        ("synth csr", &x2),
        ("synth jad", &x3),
        ("synth dia", &x4),
        ("par csr", &x5),
        ("session csr", &x6),
    ] {
        let max_diff = x1
            .iter()
            .zip(x.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("max |x_handwritten - x_{label}| = {max_diff:.2e}");
        assert!(max_diff < 1e-6);
    }

    // Power iteration (the paper's "web-search engines compute
    // eigenvectors" motivation).
    let mut x = vec![1.0; n];
    let (lambda, iters) = solvers::power_iteration(
        &mut |v, out| synth::mvm_csr(n as i64, n as i64, &csr, v, out),
        &mut x,
        1e-10,
        5000,
    );
    println!("\ndominant eigenvalue (power iteration, synthesized MVM): {lambda:.6} in {iters} iterations");
    println!("(theory for 2-D Poisson: < 8; got {lambda:.3})");
    assert!(lambda < 8.0 && lambda > 7.0);
    Ok(())
}
