//! Cross-crate integration: every kernel spec × every applicable format,
//! compiled through the facade's [`Session`] driver and validated
//! against the dense reference executor.

use bernoulli::formats::convert::AnyFormat;
use bernoulli::formats::gen;
use bernoulli::prelude::*;
use bernoulli_ir::{run_dense, DenseEnv};

fn close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
            "element {i}: {x} vs {y}"
        );
    }
}

/// Runs a one-matrix kernel both ways and compares the named output
/// vector. The session is shared across a test's formats, so each
/// test also exercises compiler reuse.
#[allow(clippy::too_many_arguments)]
fn check(
    session: &Session,
    spec: &Program,
    matrix: &str,
    format: &str,
    t: &Triplets<f64>,
    params: &[(&str, i64)],
    vecs: &[(&str, Vec<f64>)],
    out: &str,
) {
    let f = AnyFormat::from_triplets(format, t);
    let view = f.as_view().format_view();
    let bound = session
        .bind(spec, &[(matrix, view)])
        .unwrap_or_else(|e| panic!("{}/{format}: {e}", spec.name));
    let kernel = session
        .compile(&bound)
        .unwrap_or_else(|e| panic!("{}/{format}: {e}", spec.name));

    let dense = Dense::from_triplets(t);
    let mut env = DenseEnv::new();
    for (k, v) in params {
        env = env.param(k, *v);
    }
    for (k, v) in vecs {
        env = env.vector(k, v.clone());
    }
    env = env.matrix(matrix, &dense);
    run_dense(spec, &mut env).unwrap();
    let expect = env.take_vector(out);

    let mut penv = ExecEnv::new();
    for (k, v) in params {
        penv.set_param(k, *v);
    }
    for (k, v) in vecs {
        penv.bind_vec(k, v.clone());
    }
    penv.bind_sparse(matrix, f.as_view());
    kernel
        .interpret(&mut penv)
        .unwrap_or_else(|e| panic!("{}/{format}: {e}\n{}", spec.name, kernel.plan()));
    let got = penv.take_vec(out);
    close(&expect, &got);
}

const ALL: &[&str] = &[
    "csr",
    "csc",
    "coo",
    "dia",
    "ell",
    "jad",
    "dense",
    "diagsplit",
];

#[test]
fn mvm_transposed_all_formats() {
    let spec = kernels::mvm_transposed();
    let session = Session::new();
    let t = gen::structurally_symmetric(22, 120, 8, 31);
    let x = gen::dense_vector(22, 1);
    for fmt in ALL {
        check(
            &session,
            &spec,
            "A",
            fmt,
            &t,
            &[("M", 22), ("N", 22)],
            &[("x", x.clone()), ("y", vec![0.0; 22])],
            "y",
        );
    }
}

#[test]
fn row_sums_all_formats() {
    let spec = kernels::row_sums();
    let session = Session::new();
    let t = gen::random_sparse(18, 18, 70, 12);
    for fmt in ALL {
        check(
            &session,
            &spec,
            "A",
            fmt,
            &t,
            &[("M", 18), ("N", 18)],
            &[("r", vec![0.0; 18])],
            "r",
        );
    }
}

#[test]
fn diag_extract_all_formats() {
    let spec = kernels::diag_extract();
    let session = Session::new();
    let t = gen::structurally_symmetric(20, 110, 7, 8);
    for fmt in ALL {
        check(
            &session,
            &spec,
            "A",
            fmt,
            &t,
            &[("N", 20)],
            &[("d", vec![0.0; 20])],
            "d",
        );
    }
}

#[test]
fn ts_on_can1072_scale_through_facade() {
    let spec = kernels::ts();
    let session = Session::new();
    let l = gen::can_1072_like().lower_triangle_full_diag(1.0);
    let b = gen::dense_vector(1072, 2);
    for fmt in ["csr", "csc", "jad"] {
        check(
            &session,
            &spec,
            "L",
            fmt,
            &l,
            &[("N", 1072)],
            &[("b", b.clone())],
            "b",
        );
    }
}

#[test]
fn spdot_through_facade() {
    use bernoulli::formats::formats::sparsevec::sparsevec_format_view;
    let spec = kernels::spdot();
    let n = 500;
    let xa = gen::sparse_vector(n, 60, 3);
    let ya = gen::sparse_vector(n, 90, 4);
    let xs = SparseVec::from_pairs(n, &xa);
    let ys = SparseVec::from_pairs(n, &ya);

    let session = Session::new();
    let kernel = session
        .compile(
            &session
                .bind(
                    &spec,
                    &[
                        ("x", sparsevec_format_view()),
                        ("y", sparsevec_format_view()),
                    ],
                )
                .unwrap(),
        )
        .unwrap();

    let mut dx = vec![0.0; n];
    let mut dy = vec![0.0; n];
    for &(i, v) in &xa {
        dx[i] += v;
    }
    for &(i, v) in &ya {
        dy[i] += v;
    }
    let expect: f64 = dx.iter().zip(&dy).map(|(a, b)| a * b).sum();

    let mut env = ExecEnv::new();
    env.set_param("N", n as i64);
    env.bind_sparse("x", &xs);
    env.bind_sparse("y", &ys);
    env.bind_vec("s", vec![0.0]);
    kernel.interpret(&mut env).unwrap();
    let got = env.take_vec("s")[0];
    assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
}

#[test]
fn dense_vector_kernels_still_work() {
    // A kernel with no sparse operands at all: the pipeline degenerates
    // to the identity restructuring.
    let session = Session::new();
    let spec = session
        .parse("program scale(N) { inout vector v[N]; for i in 0..N { v[i] = v[i] * 2 + 1; } }")
        .unwrap();
    let kernel = session.compile(&session.bind(&spec, &[]).unwrap()).unwrap();
    let mut env = ExecEnv::new();
    env.set_param("N", 5);
    env.bind_vec("v", vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    kernel.interpret(&mut env).unwrap();
    assert_eq!(env.take_vec("v"), vec![3.0, 5.0, 7.0, 9.0, 11.0]);
}

#[test]
fn residual_all_formats() {
    // r = b - A·x: the initialization statement is hoisted out of the
    // nonzero enumeration (placed *before* it), the accumulation rides
    // the data-centric walk.
    let spec = kernels::residual();
    let session = Session::new();
    let t = gen::structurally_symmetric(20, 100, 7, 21);
    let x = gen::dense_vector(20, 4);
    let b = gen::dense_vector(20, 5);
    for fmt in ALL {
        check(
            &session,
            &spec,
            "A",
            fmt,
            &t,
            &[("M", 20), ("N", 20)],
            &[("x", x.clone()), ("b", b.clone()), ("r", vec![0.0; 20])],
            "r",
        );
    }
}
