//! Negative tests (DESIGN.md P6): the direction and ordering machinery is
//! load-bearing — sabotaging a must-increase step direction, or skipping
//! reduction relaxation where it is required, changes observable results.

use bernoulli::formats::gen;
use bernoulli::prelude::*;
use bernoulli::synth::plan::Dir;
use bernoulli::synth::run_plan;
use bernoulli_ir::{run_dense, DenseEnv};

fn ts_reference(t: &Triplets<f64>, b0: &[f64]) -> Vec<f64> {
    let spec = kernels::ts();
    let dense = Dense::from_triplets(t);
    let mut env = DenseEnv::new()
        .param("N", t.nrows() as i64)
        .vector("b", b0.to_vec())
        .matrix("L", &dense);
    run_dense(&spec, &mut env).unwrap();
    env.take_vector("b")
}

/// Reversing the outer (row) enumeration of the synthesized CSR
/// triangular solve must produce wrong answers: the dependence machinery
/// marked it must-increase for a reason.
#[test]
fn reversed_ts_rows_give_wrong_answers() {
    let session = Session::new();
    let spec = kernels::ts();
    let t = gen::structurally_symmetric(16, 80, 6, 55).lower_triangle_full_diag(1.0);
    let l = Csr::from_triplets(&t);
    let b0 = gen::dense_vector(16, 3);
    let expect = ts_reference(&t, &b0);

    let kernel = session
        .compile(&session.bind(&spec, &[("L", l.format_view())]).unwrap())
        .unwrap();

    // Sanity: the untampered plan is correct.
    let mut env = ExecEnv::new();
    env.set_param("N", 16);
    env.bind_sparse("L", &l);
    env.bind_vec("b", b0.clone());
    kernel.interpret(&mut env).unwrap();
    let ok = env.take_vec("b");
    assert!(
        ok.iter().zip(&expect).all(|(a, b)| (a - b).abs() < 1e-9),
        "untampered plan must be correct"
    );

    // Sabotage: reverse the outer step. The interpreter supports Rev on
    // interval-like levels; CSR's row level is an interval.
    let mut plan = kernel.plan().clone();
    plan.steps[0].dir = Dir::Rev;
    let mut env = ExecEnv::new();
    env.set_param("N", 16);
    env.bind_sparse("L", &l);
    env.bind_vec("b", b0.clone());
    run_plan(&plan, &mut env).unwrap();
    let bad = env.take_vec("b");
    assert!(
        bad.iter().zip(&expect).any(|(a, b)| (a - b).abs() > 1e-6),
        "reversed rows should corrupt the solve: {bad:?}"
    );
}

/// Without reduction relaxation, COO (unordered enumeration) admits no
/// plan for MVM under strict lexicographic semantics... but CSR still
/// does (its column enumeration is increasing). This pins down exactly
/// what the relaxation buys.
#[test]
fn relaxation_is_needed_for_unordered_formats() {
    let session = Session::new();
    let spec = kernels::mvm();
    let t = gen::random_sparse(10, 10, 30, 1);
    let coo = Coo::from_triplets(&t);
    let csr = Csr::from_triplets(&t);

    let strict = SynthOptions {
        relax_reductions: false,
        ..SynthOptions::default()
    };
    use bernoulli::synth::plan::StepKind;
    let uses_level_enum = |plan: &bernoulli::synth::Plan| {
        plan.steps
            .iter()
            .any(|st| matches!(st.kind, StepKind::Level { .. } | StepKind::MergeJoin { .. }))
    };
    // CSR: data-centric even under strict ordering (its column level is
    // sorted, so the carried reduction dependence is satisfied).
    let b_csr = session.bind(&spec, &[("A", csr.format_view())]).unwrap();
    let k_csr = session.compile_with(&b_csr, &strict).unwrap();
    assert!(uses_level_enum(k_csr.plan()), "{}", k_csr.plan());
    // COO: under strict ordering the unordered coupled level cannot carry
    // the reduction dependence, so the compiler is forced off the
    // data-centric enumeration (interval + linear searches).
    let b_coo = session.bind(&spec, &[("A", coo.format_view())]).unwrap();
    let k_coo_strict = session.compile_with(&b_coo, &strict).unwrap();
    assert!(
        !uses_level_enum(k_coo_strict.plan()),
        "strict semantics must not walk COO storage order:
{}",
        k_coo_strict.plan()
    );
    // With the (default) relaxation, the storage-order walk is legal and
    // the cost model picks it.
    let k_coo = session.compile(&b_coo).unwrap();
    assert!(uses_level_enum(k_coo.plan()), "{}", k_coo.plan());
}

/// Triangular solve is never relaxable: even with relaxation on, an
/// upper-triangular operand presented as "lower" (wrong bounds) cannot
/// corrupt the machinery — the solve on the correct operand stays exact
/// across every format that synthesizes.
#[test]
fn ts_results_are_exact_across_formats() {
    let session = Session::new();
    let spec = kernels::ts();
    let t = gen::structurally_symmetric(24, 130, 9, 77).lower_triangle_full_diag(2.0);
    let b0 = gen::dense_vector(24, 5);
    let expect = ts_reference(&t, &b0);
    use bernoulli::formats::convert::AnyFormat;
    for fmt in ["csr", "csc", "jad", "ell", "dia", "diagsplit"] {
        let f = AnyFormat::from_triplets(fmt, &t);
        let kernel = session
            .compile(
                &session
                    .bind(&spec, &[("L", f.as_view().format_view())])
                    .unwrap(),
            )
            .unwrap_or_else(|e| panic!("{fmt}: {e}"));
        let mut env = ExecEnv::new();
        env.set_param("N", 24);
        env.bind_sparse("L", f.as_view());
        env.bind_vec("b", b0.clone());
        kernel.interpret(&mut env).unwrap();
        let got = env.take_vec("b");
        for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "{fmt} element {i}: {a} vs {b}"
            );
        }
    }
}

/// A statement that is NOT annihilated by the sparse matrix's zeros and
/// not covered by a storage guarantee cannot legally restrict to stored
/// entries. The compiler must fall back to a plan that visits the full
/// iteration space (random access), not silently drop instances.
#[test]
fn non_annihilated_statements_fall_back_to_dense_plans() {
    use bernoulli::synth::plan::StepKind;
    let session = Session::new();
    let spec = session
        .parse(
            r#"program addone(N) {
             in matrix A[N][N];
             inout vector d[N];
             for i in 0..N {
               for j in 0..N {
                 d[i] = d[i] + A[i][j] + 1;
               }
             }
           }"#,
        )
        .unwrap();
    let t = gen::random_sparse(10, 10, 20, 3);
    let a = Csr::from_triplets(&t);
    let kernel = session
        .compile(&session.bind(&spec, &[("A", a.format_view())]).unwrap())
        .unwrap();
    // No data-centric enumeration of A is legal for this body; the "+1"
    // term fires at unstored positions too.
    assert!(
        kernel
            .plan()
            .steps
            .iter()
            .all(|st| matches!(st.kind, StepKind::Interval { .. })),
        "must use the dense fallback:\n{}",
        kernel.plan()
    );

    // And it computes the right thing.
    let dense = Dense::from_triplets(&t);
    let mut env = DenseEnv::new()
        .param("N", 10)
        .vector("d", vec![0.0; 10])
        .matrix("A", &dense);
    run_dense(&spec, &mut env).unwrap();
    let expect = env.take_vector("d");

    let mut penv = ExecEnv::new();
    penv.set_param("N", 10);
    penv.bind_vec("d", vec![0.0; 10]);
    penv.bind_sparse("A", &a);
    kernel.interpret(&mut penv).unwrap();
    let got = penv.take_vec("d");
    for (x, y) in got.iter().zip(&expect) {
        assert!((x - y).abs() < 1e-9, "{got:?} vs {expect:?}");
    }
}

/// Work accounting: the data-centric CSR MVM plan performs exactly one
/// statement execution per stored entry and no searches.
#[test]
fn run_stats_reflect_data_centric_work() {
    let session = Session::new();
    let spec = kernels::mvm();
    let t = gen::random_sparse(30, 30, 180, 9);
    let a = Csr::from_triplets(&t);
    let kernel = session
        .compile(&session.bind(&spec, &[("A", a.format_view())]).unwrap())
        .unwrap();
    let mut env = ExecEnv::new();
    env.set_param("M", 30).set_param("N", 30);
    env.bind_vec("x", gen::dense_vector(30, 1));
    env.bind_vec("y", vec![0.0; 30]);
    env.bind_sparse("A", &a);
    let stats = kernel.interpret(&mut env).unwrap();
    assert_eq!(stats.executions, a.nnz() as u64);
    assert_eq!(stats.searches, 0);
    assert_eq!(stats.iterations, (30 + a.nnz()) as u64);
    assert_eq!(stats.guard_misses, 0);
}
