//! Error-path contract of the embedded compiler: every class of invalid
//! input surfaces as a typed `Err` — distinct variants per failure layer,
//! convertible into [`bernoulli::Error`] — and never a panic.

use bernoulli::prelude::*;
use bernoulli::synth::SynthError;
use bernoulli_ir::IrError;

#[test]
fn malformed_text_is_a_parse_error_with_position() {
    let session = Session::new();
    let err = session
        .parse("program broken(N) {\n  in matrix A[N][N];\n  for i in 0..N ]\n}")
        .expect_err("stray ']' must not parse");
    match &err {
        SynthError::InvalidProgram(IrError::Parse(p)) => {
            assert_eq!(p.line, 3, "{p}");
            assert!(p.column > 0, "{p}");
            let msg = p.to_string();
            assert!(msg.contains("line 3"), "{msg}");
        }
        other => panic!("expected InvalidProgram(Parse), got {other:?}"),
    }
    // The facade error preserves the layer.
    let facade: Error = err.into();
    assert!(matches!(facade, Error::Synth(_)), "{facade:?}");
}

#[test]
fn semantically_invalid_text_is_a_validate_error() {
    let session = Session::new();
    // Parses fine, but `B` is never declared.
    let err = session
        .parse("program bad(N) { inout vector v[N]; for i in 0..N { v[i] = v[i] + B[i][i]; } }")
        .expect_err("undeclared array must not validate");
    assert!(
        matches!(&err, SynthError::InvalidProgram(IrError::Validate(_))),
        "{err:?}"
    );
}

#[test]
fn binding_an_unknown_matrix_name_errs() {
    let session = Session::new();
    let spec = kernels::mvm();
    let t = Triplets::from_entries(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
    let a = Csr::from_triplets(&t);
    // The program calls its matrix "A", not "B".
    let err = session
        .bind(&spec, &[("B", a.format_view())])
        .expect_err("unbound name must not bind");
    match &err {
        SynthError::UnknownMatrix { name } => assert_eq!(name, "B"),
        other => panic!("expected UnknownMatrix, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains('B'), "{msg}");
}

#[test]
fn rank_disagreement_between_view_and_array_errs() {
    use bernoulli::formats::formats::sparsevec::sparsevec_format_view;
    let session = Session::new();
    let spec = kernels::mvm();
    // A is declared as a 2-D matrix; a sparse-vector view is 1-D.
    let err = session
        .bind(&spec, &[("A", sparsevec_format_view())])
        .expect_err("rank mismatch must not bind");
    assert!(matches!(&err, SynthError::Config(_)), "{err:?}");
    let msg = err.to_string();
    assert!(
        msg.contains("dense attrs") || msg.contains("dimension"),
        "{msg}"
    );
}

#[test]
fn dimension_mismatched_interpret_errs() {
    let session = Session::new();
    let spec = kernels::mvm();
    let t = Triplets::from_entries(3, 3, &[(0, 0, 1.0), (1, 2, 2.0), (2, 1, 3.0)]);
    let a = Csr::from_triplets(&t);
    let kernel = session
        .compile(&session.bind(&spec, &[("A", a.format_view())]).unwrap())
        .unwrap();

    // Missing operand binding.
    let mut env = ExecEnv::new();
    env.set_param("M", 3).set_param("N", 3);
    env.bind_sparse("A", &a);
    env.bind_vec("y", vec![0.0; 3]);
    // "x" is never bound.
    let err = kernel
        .interpret(&mut env)
        .expect_err("unbound vector must not run");
    assert!(matches!(&err, SynthError::Plan(_)), "{err:?}");

    // Out-of-range candidate index on the same kernel.
    let mut env = ExecEnv::new();
    let err = kernel
        .interpret_candidate(usize::MAX, &mut env)
        .expect_err("bogus candidate index must not run");
    assert!(matches!(&err, SynthError::Plan(_)), "{err:?}");
}

#[test]
fn the_four_error_classes_are_distinct_variants() {
    use bernoulli::formats::formats::sparsevec::sparsevec_format_view;
    let session = Session::new();
    let spec = kernels::mvm();
    let t = Triplets::from_entries(2, 2, &[(0, 0, 1.0)]);
    let a = Csr::from_triplets(&t);

    let parse = session.parse("program x(").unwrap_err();
    let unknown = session.bind(&spec, &[("Z", a.format_view())]).unwrap_err();
    let rank = session
        .bind(&spec, &[("A", sparsevec_format_view())])
        .unwrap_err();
    let kernel = session
        .compile(&session.bind(&spec, &[("A", a.format_view())]).unwrap())
        .unwrap();
    let mut env = ExecEnv::new(); // nothing bound at all
    let run = kernel.interpret(&mut env).unwrap_err();

    let discriminants = [
        std::mem::discriminant(&parse),
        std::mem::discriminant(&unknown),
        std::mem::discriminant(&rank),
        std::mem::discriminant(&run),
    ];
    for i in 0..discriminants.len() {
        for j in i + 1..discriminants.len() {
            assert_ne!(
                discriminants[i], discriminants[j],
                "classes {i} and {j} collapsed into one variant"
            );
        }
    }

    // All four convert into the facade error and display non-trivially.
    for e in [parse, unknown, rank, run] {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        let facade: Error = e.into();
        assert!(matches!(facade, Error::Synth(_)));
    }
}
