//! Single-flight coalescing contract: 16 concurrent cold `compile`
//! calls for the SAME plan-cache key through one shared [`Service`]
//! must run exactly ONE search (the rest coalesce onto it or hit the
//! plan cache it populated), produce byte-identical kernels, and —
//! when the host has a `rustc` — share exactly ONE kernel build.
//!
//! This test runs in its own binary so the service's process-wide
//! kernel-build baseline is not perturbed by sibling tests.

use bernoulli::prelude::*;
use std::sync::{Arc, Barrier};

const CLIENTS: usize = 16;

const MVM: &str = "
    program mvm(M, N) {
      in matrix A[M][N];
      in vector x[N];
      inout vector y[M];
      for i in 0..M {
        for j in 0..N {
          y[i] = y[i] + A[i][j] * x[j];
        }
      }
    }
";

fn csr(n: usize) -> Csr {
    let mut entries = Vec::new();
    for i in 0..n {
        entries.push((i, i, 2.0 + i as f64));
        if i >= 1 {
            entries.push((i, i - 1, 0.5));
        }
    }
    Csr::from_triplets(&Triplets::from_entries(n, n, &entries))
}

#[test]
fn sixteen_cold_compiles_share_one_search_and_one_build() {
    let service = Arc::new(Service::new(ServiceConfig {
        // Let every client actually run concurrently; coalescing, not
        // admission, must be what collapses the work.
        max_inflight: CLIENTS,
        max_queue: CLIENTS,
        ..ServiceConfig::default()
    }));
    let a = csr(24);
    let p = service.parse(MVM).expect("parses");
    let bound = Arc::new(service.bind(&p, &[("A", a.format_view())]).expect("binds"));

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let service = Arc::clone(&service);
        let bound = Arc::clone(&bound);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            service.compile(&bound).expect("compiles")
        }));
    }
    let kernels: Vec<CompiledKernel> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let stats = service.stats();
    assert_eq!(stats.completed, CLIENTS as u64, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
    assert_eq!(
        stats.searches, 1,
        "exactly one genuine search must run for one key: {stats:?}"
    );
    // Everyone else either waited on the leader's flight or arrived
    // after it published to the plan cache.
    assert!(
        stats.coalesced <= (CLIENTS - 1) as u64,
        "coalesced cannot exceed the follower count: {stats:?}"
    );

    // Determinism: all 16 kernels emit byte-identical source.
    let reference = kernels[0].emit("mvm_kernel").expect("emits");
    for k in &kernels[1..] {
        assert_eq!(
            k.emit("mvm_kernel").expect("emits"),
            reference,
            "coalesced kernels must be byte-identical"
        );
    }

    // The native tier shares the same property: 16 backends over one
    // shared store cost exactly one rustc build.
    if bernoulli::rustc_info().is_ok() {
        let dir =
            std::env::temp_dir().join(format!("bernoulli-singleflight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = KernelStore::at(&dir);
        let barrier = Arc::new(Barrier::new(CLIENTS));
        let mut handles = Vec::new();
        for k in kernels {
            let store = store.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                k.backend_in(&store).is_compiled()
            }));
        }
        for h in handles {
            assert!(h.join().unwrap(), "every client must get native code");
        }
        let stats = service.stats();
        assert_eq!(
            stats.kernel_builds, 1,
            "16 backends over one store must cost one rustc build: {stats:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sequential_and_coalesced_results_are_identical() {
    // The coalesced result must be indistinguishable from a sequential
    // compile on a fresh service (determinism across topologies).
    let a = csr(24);
    let compile_once = |svc: &Service| {
        let p = svc.parse(MVM).expect("parses");
        let bound = svc.bind(&p, &[("A", a.format_view())]).expect("binds");
        svc.compile(&bound)
            .expect("compiles")
            .emit("mvm_kernel")
            .expect("emits")
    };
    let sequential = compile_once(&Service::new(ServiceConfig::default()));

    let service = Arc::new(Service::new(ServiceConfig::default()));
    let p = service.parse(MVM).expect("parses");
    let bound = Arc::new(service.bind(&p, &[("A", a.format_view())]).expect("binds"));
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let service = Arc::clone(&service);
            let bound = Arc::clone(&bound);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service
                    .compile(&bound)
                    .expect("compiles")
                    .emit("mvm_kernel")
                    .expect("emits")
            })
        })
        .collect();
    for h in handles {
        assert_eq!(
            h.join().unwrap(),
            sequential,
            "concurrent result must equal the sequential one byte-for-byte"
        );
    }
}
