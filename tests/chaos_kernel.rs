//! Fault-injected chaos tests over the compiled-kernel tier (run with
//! `--features faults`): injected `rustc`, `dlopen`, and persistent
//! plan-cache read failures must each surface as the documented typed
//! error with a correct interpreter fallback — bitwise-identical to the
//! fault-free run — never a panic. Repeated build failures must trip
//! the store's circuit breaker, and a cleared fault table must heal.
#![cfg(feature = "faults")]

use bernoulli::prelude::*;
use bernoulli_govern::faults;
use bernoulli_synth::KernelCacheError;
use std::path::PathBuf;
use std::sync::Mutex;

/// Fault table + kernel-cache breaker state are process-global.
static CHAOS: Mutex<()> = Mutex::new(());

const MVM: &str = "
    program mvm(M, N) {
      in matrix A[M][N];
      in vector x[N];
      inout vector y[M];
      for i in 0..M {
        for j in 0..N {
          y[i] = y[i] + A[i][j] * x[j];
        }
      }
    }
";

fn csr() -> Csr {
    Csr::from_triplets(&Triplets::from_entries(
        3,
        3,
        &[(0, 0, 2.0), (0, 2, 5.0), (1, 2, 1.0), (2, 1, 4.0)],
    ))
}

fn reference() -> Vec<f64> {
    let a = [[2.0, 0.0, 5.0], [0.0, 0.0, 1.0], [0.0, 4.0, 0.0]];
    let x = [1.0, 2.0, 3.0];
    (0..3)
        .map(|i| (0..3).map(|j| a[i][j] * x[j]).sum())
        .collect()
}

fn compile(s: &Session, a: &Csr) -> CompiledKernel {
    let p = s.parse(MVM).unwrap();
    let bound = s.bind(&p, &[("A", a.format_view())]).unwrap();
    s.compile(&bound).unwrap()
}

/// Runs the kernel through the given backend with the positional call
/// convention both backends share.
fn run_backend(k: &CompiledKernel, backend: &KernelBackend, a: &Csr) -> Vec<f64> {
    let x = vec![1.0, 2.0, 3.0];
    let mut y = vec![0.0; 3];
    let mut args = [KernelArg::Csr(a), KernelArg::In(&x), KernelArg::Out(&mut y)];
    k.run_with(backend, &[3, 3], &mut args).unwrap();
    y
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bernoulli-chaos-{tag}-{}", std::process::id()))
}

/// Guard restoring a clean fault table even when an assertion fails.
struct ClearFaults;
impl Drop for ClearFaults {
    fn drop(&mut self) {
        faults::clear();
    }
}

#[test]
fn rustc_fault_is_typed_with_identical_interpreter_fallback() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    if bernoulli_synth::rustc_info().is_err() {
        return;
    }
    let a = csr();
    let s = Session::new();
    let k = compile(&s, &a);

    // Fault-free native run first: the reference bits.
    let dir = scratch("rustc-ok");
    let _ = std::fs::remove_dir_all(&dir);
    let store = KernelStore::at(&dir);
    store.breaker_reset();
    let native = k.backend_in(&store);
    assert!(native.is_compiled());
    let fault_free = run_backend(&k, &native, &a);
    assert_eq!(fault_free, reference());

    // Every build attempt fails injected (the store retries 3 times per
    // build): the backend must degrade to the interpreter with the
    // typed I/O reason, and produce bitwise-identical output.
    let dir2 = scratch("rustc-fail");
    let _ = std::fs::remove_dir_all(&dir2);
    let store2 = KernelStore::at(&dir2);
    store2.breaker_reset();
    faults::configure("kernel.rustc=fail#3");
    let degraded = k.backend_in(&store2);
    match &degraded {
        KernelBackend::Interpreted {
            reason: LoadError::Cache(KernelCacheError::Io { detail }),
        } => assert!(detail.contains("kernel.rustc"), "{detail}"),
        other => panic!("expected typed Io fallback, got {other:?}"),
    }
    let fallback = run_backend(&k, &degraded, &a);
    assert_eq!(
        fallback.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        fault_free.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "interpreter fallback must be bitwise-identical to the fault-free run"
    );

    // Fault cleared: the same store heals (breaker has one failure,
    // well under the trip threshold).
    faults::clear();
    store2.breaker_reset();
    let healed = k.backend_in(&store2);
    assert!(healed.is_compiled(), "{healed:?}");
    assert_eq!(run_backend(&k, &healed, &a), fault_free);
    store2.breaker_reset();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn transient_rustc_fault_is_retried_to_success() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    if bernoulli_synth::rustc_info().is_err() {
        return;
    }
    let a = csr();
    let s = Session::new();
    let k = compile(&s, &a);
    let dir = scratch("retry");
    let _ = std::fs::remove_dir_all(&dir);
    let store = KernelStore::at(&dir);
    store.breaker_reset();
    let retries_before = bernoulli::kernel_cache_stats().retries;
    // Only the FIRST build attempt fails; the in-build retry loop must
    // absorb it and still come back with native code.
    faults::configure("kernel.rustc=fail#1");
    let backend = k.backend_in(&store);
    assert!(backend.is_compiled(), "retry must heal a one-shot fault");
    assert!(bernoulli::kernel_cache_stats().retries > retries_before);
    assert_eq!(run_backend(&k, &backend, &a), reference());
    store.breaker_reset();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_rustc_faults_trip_the_circuit_breaker() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    if bernoulli_synth::rustc_info().is_err() {
        return;
    }
    let a = csr();
    let s = Session::new();
    let k = compile(&s, &a);
    let dir = scratch("breaker");
    let _ = std::fs::remove_dir_all(&dir);
    let store = KernelStore::at(&dir);
    store.breaker_reset();
    // 3 builds × 3 attempts, all failing: the third failed build trips
    // the breaker.
    faults::configure("kernel.rustc=fail#9");
    for _ in 0..3 {
        let b = k.backend_in(&store);
        assert!(!b.is_compiled(), "{b:?}");
        // Each failed load must still serve correct interpreter output.
        assert_eq!(run_backend(&k, &b, &a), reference());
    }
    assert!(store.breaker_tripped(), "3 consecutive failures must trip");
    // With the breaker open the next request short-circuits to the
    // typed CircuitOpen reason without consuming any fault arming.
    match k.backend_in(&store) {
        KernelBackend::Interpreted {
            reason: LoadError::Cache(KernelCacheError::CircuitOpen { failures }),
        } => assert!(failures >= 3, "failures = {failures}"),
        other => panic!("expected CircuitOpen fallback, got {other:?}"),
    }
    // Heal: clear faults, reset the breaker, and build for real.
    faults::clear();
    store.breaker_reset();
    let healed = k.backend_in(&store);
    assert!(healed.is_compiled(), "{healed:?}");
    assert_eq!(run_backend(&k, &healed, &a), reference());
    store.breaker_reset();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dlopen_fault_is_typed_with_identical_interpreter_fallback() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    if bernoulli_synth::rustc_info().is_err() {
        return;
    }
    let a = csr();
    let s = Session::new();
    let k = compile(&s, &a);
    let dir = scratch("dlopen");
    let _ = std::fs::remove_dir_all(&dir);
    let store = KernelStore::at(&dir);
    store.breaker_reset();
    // Build + load fault-free first (artifact now cached on disk).
    let native = k.backend_in(&store);
    assert!(native.is_compiled());
    let fault_free = run_backend(&k, &native, &a);
    // The warm load now fails at dlopen: typed LoadFailed reason,
    // interpreter fallback, identical bits.
    faults::configure("kernel.dlopen=fail#1");
    let degraded = k.backend_in(&store);
    match &degraded {
        KernelBackend::Interpreted {
            reason: LoadError::Cache(KernelCacheError::LoadFailed { detail }),
        } => assert!(detail.contains("kernel.dlopen"), "{detail}"),
        other => panic!("expected typed LoadFailed fallback, got {other:?}"),
    }
    let fallback = run_backend(&k, &degraded, &a);
    assert_eq!(
        fallback.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        fault_free.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    // Fault spent: the very next load succeeds from the warm artifact.
    let healed = k.backend_in(&store);
    assert!(healed.is_compiled(), "{healed:?}");
    assert_eq!(run_backend(&k, &healed, &a), fault_free);
    store.breaker_reset();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_read_fault_degrades_to_a_full_search() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    let a = csr();
    let dir = scratch("persist");
    let _ = std::fs::remove_dir_all(&dir);
    let mk_service = || {
        Service::new(ServiceConfig {
            persist_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
    };
    // Service A populates the persistent tier.
    let sa = mk_service();
    let p = sa.parse(MVM).unwrap();
    let bound = sa.bind(&p, &[("A", a.format_view())]).unwrap();
    let warm = sa.compile(&bound).unwrap();
    assert!(sa.persist_stats().unwrap().writes >= 1);
    // Service B (fresh in-memory caches, same directory) would warm-
    // start from disk — but the injected read fault must degrade it to
    // a miss + full search, never an error, with an identical plan.
    let sb = mk_service();
    faults::configure("persist.read=fail#1");
    let cold = sb
        .compile(&bound)
        .expect("read fault must not fail the compile");
    let stats = sb.persist_stats().unwrap();
    assert_eq!(stats.errors, 1, "{stats:?}");
    assert!(!cold.report().plan_cache_disk_hit);
    assert_eq!(
        warm.emit("mvm_kernel").unwrap(),
        cold.emit("mvm_kernel").unwrap(),
        "fault-degraded search must produce byte-identical emitted source"
    );
    // Fault spent: a third service warm-starts from disk normally.
    faults::clear();
    let sc = mk_service();
    let disk = sc.compile(&bound).unwrap();
    assert!(disk.report().plan_cache_disk_hit);
    assert_eq!(
        warm.emit("mvm_kernel").unwrap(),
        disk.emit("mvm_kernel").unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_artifact_reserves_through_the_interpreter() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    if bernoulli_synth::rustc_info().is_err() {
        return;
    }
    let a = csr();
    let s = Session::new();
    let k = compile(&s, &a);
    let dir = scratch("quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    let store = KernelStore::at(&dir);
    store.breaker_reset();
    let native = k.backend_in(&store);
    let fault_free = run_backend(&k, &native, &a);
    let KernelBackend::Validated(loaded) = &native else {
        panic!("expected a validated native backend, got {native:?}");
    };
    // Quarantine the artifact (the same path `KernelCallError::Abi`
    // takes at call time) and re-request the backend: the request must
    // re-serve through the interpreter with the typed reason.
    store.quarantine(loaded.artifact_path());
    let after = k.backend_in(&store);
    match &after {
        KernelBackend::Interpreted {
            reason: LoadError::Cache(KernelCacheError::Quarantined { .. }),
        } => {}
        other => panic!("expected Quarantined fallback, got {other:?}"),
    }
    let fallback = run_backend(&k, &after, &a);
    assert_eq!(
        fallback.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        fault_free.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    store.clear_quarantine();
    store.breaker_reset();
    let _ = std::fs::remove_dir_all(&dir);
}
