//! Concurrency must not change compiler output (S38): N client threads
//! driving the same workloads through one shared [`Service`] produce
//! plans and emitted source byte-identical to a sequential
//! fresh-session baseline — at every worker-pool size, under every
//! cache mode.

use bernoulli::blas::synth::{spec_for, view_for};
use bernoulli::prelude::*;
use std::sync::Arc;

/// The determinism workload matrix: five structurally distinct
/// (kernel, format) pairs exercising level enumeration (csr/csc),
/// jagged-diagonal permutations (jad), and triangular-solve legality.
const WORKLOADS: &[(&str, &str)] = &[
    ("mvm", "csr"),
    ("mvm", "jad"),
    ("ts", "csr"),
    ("ts", "jad"),
    ("mvmt", "csc"),
];

/// (best-plan text, emitted module) for one workload — the byte-level
/// identity we hold fixed across execution strategies.
fn fingerprint(kernel: &CompiledKernel, name: &str) -> (String, String) {
    (
        kernel.plan().to_string(),
        kernel.emit(name).expect("emission must succeed"),
    )
}

/// Sequential baseline: a fresh single-tenant session per workload, so
/// no cache tier or pool interaction can influence the result.
fn sequential_baseline() -> Vec<(String, String)> {
    WORKLOADS
        .iter()
        .map(|&(k, f)| {
            let session = Session::new();
            let (p, mat) = spec_for(k);
            let bound = session.bind(&p, &[(mat, view_for(k, f))]).unwrap();
            let kernel = session.compile(&bound).unwrap();
            fingerprint(&kernel, &format!("{k}_{f}"))
        })
        .collect()
}

/// Drives `clients` threads through one shared service, each compiling
/// every workload (rotated so distinct workloads overlap in flight),
/// and asserts every result matches the baseline byte-for-byte.
fn check_concurrent(svc: Service, clients: usize, baseline: &[(String, String)]) {
    let svc = Arc::new(svc);
    let mut handles = Vec::new();
    for c in 0..clients {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            for i in 0..WORKLOADS.len() {
                // Rotate the order per client: thread c starts at
                // workload c, so different searches run concurrently.
                let (k, f) = WORKLOADS[(i + c) % WORKLOADS.len()];
                let (p, mat) = spec_for(k);
                let bound = svc.bind(&p, &[(mat, view_for(k, f))]).unwrap();
                let kernel = svc.compile(&bound).unwrap();
                out.push((
                    (i + c) % WORKLOADS.len(),
                    fingerprint(&kernel, &format!("{k}_{f}")),
                ));
            }
            out
        }));
    }
    for h in handles {
        for (w, got) in h.join().expect("client thread panicked") {
            assert_eq!(
                got, baseline[w],
                "workload {:?} diverged from the sequential baseline",
                WORKLOADS[w]
            );
        }
    }
}

#[test]
fn concurrent_compiles_match_sequential_baseline_at_every_pool_size() {
    let baseline = sequential_baseline();
    // Pool sizes 1/2/4 cover serial fan-out, minimal parallelism, and
    // oversubscription of the search relative to client threads.
    for threads in [1, 2, 4] {
        let svc = Service::new(ServiceConfig {
            threads: Some(threads),
            ..ServiceConfig::default()
        });
        check_concurrent(svc, 4, &baseline);
    }
}

#[test]
fn concurrent_compiles_deterministic_under_every_cache_mode() {
    let baseline = sequential_baseline();
    for mode in [CacheMode::Shared, CacheMode::Overlay, CacheMode::Isolated] {
        let svc = Service::new(ServiceConfig {
            threads: Some(2),
            cache_mode: mode,
            ..ServiceConfig::default()
        });
        check_concurrent(svc, 3, &baseline);
    }
}

#[test]
fn shared_global_pool_service_is_deterministic() {
    // The default configuration: searches fan out on the process-global
    // pool (sized by BERNOULLI_THREADS), shared by all clients.
    let baseline = sequential_baseline();
    check_concurrent(Service::with_defaults(), 4, &baseline);
}
