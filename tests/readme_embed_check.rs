//! Mirror of the README "Embedding the compiler", "Running as a
//! service", "Running synthesized kernels", "Blocked formats",
//! "Structure-aware selection" and "Robustness & self-healing"
//! examples — keeps the documented snippets compiling and running as
//! the API evolves.

use bernoulli::prelude::*;

fn build() -> Result<(), bernoulli::Error> {
    let session = Session::new();
    let t = Triplets::from_entries(3, 3, &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 3.0), (2, 2, 4.0)]);

    let a = Csr::from_triplets(&t);
    let mvm = session.bind(&kernels::mvm(), &[("A", a.format_view())])?;
    let mvm_kernel = session.compile(&mvm)?;
    let rust_src = mvm_kernel.emit("mvm_csr")?;

    let l = Jad::from_triplets(&t);
    let ts = session.bind(&kernels::ts(), &[("L", l.format_view())])?;
    let ts_kernel = session.compile(&ts)?;
    assert!(ts_kernel.cost() > 0.0);
    assert!(rust_src.contains("fn mvm_csr"));
    Ok(())
}

#[test]
fn readme_snippet_runs() {
    build().unwrap();
}

// README "Running as a service" — identical to the documented snippet
// except for a test-scoped persist_dir (the README points at a
// relative "plan-cache" path; tests must not litter the repo root).
fn serve(persist_dir: std::path::PathBuf) -> Result<(), bernoulli::Error> {
    use std::time::Duration;

    let svc = std::sync::Arc::new(Service::new(ServiceConfig {
        max_inflight: 4,                                    // concurrent compiles
        max_queue: 64,                                      // waiters beyond that
        default_deadline: Some(Duration::from_millis(250)), // queue wait + compile
        persist_dir: Some(persist_dir),                     // warm-start across restarts
        ..ServiceConfig::default()
    }));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = std::sync::Arc::clone(&svc);
            std::thread::spawn(move || {
                let t = Triplets::from_entries(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]);
                let a = Csr::from_triplets(&t);
                let bound = svc.bind(&kernels::mvm(), &[("A", a.format_view())])?;
                svc.compile(&bound).map(|k| k.plan().to_string())
            })
        })
        .collect();
    let mut plans: Vec<String> = Vec::new();
    for h in handles {
        match h.join() {
            Ok(r) => plans.push(r?),
            Err(_) => unreachable!("client thread panicked"),
        }
    }
    assert!(plans.windows(2).all(|w| w[0] == w[1])); // byte-identical under concurrency
    Ok(())
}

#[test]
fn readme_service_snippet_runs() {
    let dir = std::env::temp_dir().join(format!("bernoulli-readme-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    serve(dir.clone()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// README "Running synthesized kernels" — identical to the documented
// snippet. Must hold on hosts with and without a usable `rustc`: the
// backend is either a runtime-compiled cdylib or the interpreter with
// a typed reason, and both produce the same result.
fn run() -> Result<(), bernoulli::Error> {
    let session = Session::new();
    let t = Triplets::from_entries(3, 3, &[(0, 0, 2.0), (1, 2, 1.0), (2, 1, 4.0)]);
    let a = Csr::from_triplets(&t);
    let bound = session.bind(&kernels::mvm(), &[("A", a.format_view())])?;
    let kernel = session.compile(&bound)?;

    let backend = kernel.backend();
    if let KernelBackend::Interpreted { reason } = &backend {
        eprintln!("running through the interpreter: {reason}");
    }

    let x = vec![1.0, 2.0, 3.0];
    let mut y = vec![0.0; 3];
    let mut args = [
        KernelArg::Csr(&a),
        KernelArg::In(&x),
        KernelArg::Out(&mut y),
    ];
    kernel.run_with(&backend, &[3, 3], &mut args)?;
    assert_eq!(y, vec![2.0, 3.0, 8.0]);
    Ok(())
}

#[test]
fn readme_loaded_kernel_snippet_runs() {
    run().unwrap();
}

// README "Blocked formats" — identical to the documented snippet.
#[rustfmt::skip]
fn blocked() -> Result<(), bernoulli::Error> {
    let session = Session::new();
    // Two dense 2x2 diagonal blocks plus one 2x2 coupling block.
    let t = Triplets::from_entries(4, 4, &[
        (0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 4.0),
        (2, 2, 5.0), (2, 3, 2.0), (3, 2, 2.0), (3, 3, 5.0),
        (0, 2, 1.0), (0, 3, 0.5), (1, 2, 0.5), (1, 3, 1.0),
    ]);

    // Discovery scores every candidate shape by fill.
    let rep = discover_block_size(&t, 4, 0.9);
    assert_eq!((rep.r, rep.c, rep.fill), (2, 2, 1.0));

    // Fixed blocks (BSR) and variable strips (VBR) are ordinary views:
    // the same MVM spec synthesizes over the two-level blocked index
    // space, and the emitter tiles the result.
    let a = Bsr::from_triplets(&t, rep.r, rep.c);
    let k = session.compile(&session.bind(&kernels::mvm(), &[("A", a.format_view())])?)?;
    assert!(k.emit("mvm_bsr2x2")?.contains("acc0t__")); // register accumulators

    let (rp, cp) = discover_strips(&t);
    let v = Vbr::from_triplets(&t, &rp, &cp);
    let kv = session.compile(&session.bind(&kernels::mvm(), &[("A", v.format_view())])?)?;
    assert!(kv.emit("mvm_vbr")?.contains("accv__")); // strip accumulators
    Ok(())
}

#[test]
fn readme_blocked_snippet_runs() {
    blocked().unwrap();
}

// README "Structure-aware selection" — identical to the documented
// snippet.
fn advise() -> Result<(), bernoulli::Error> {
    use bernoulli::formats::gen;

    let session = Session::new();

    // One instance, never benchmarked: analyze its structure, derive
    // the cost model's statistics from it, and rank the candidate
    // formats — one search per format, all sharing the session's
    // plan cache.
    let t = gen::banded(1000, 8, 7);
    let advice = session.advise(&kernels::mvm(), "A", &t, &[])?; // &[] = default roster

    for e in &advice.ranked {
        println!("{:<4}  predicted cost {:>12.0}", e.format, e.predicted_cost);
    }
    println!(
        "features: {}x{}, {} nnz, bandwidth {}",
        advice.features.nrows,
        advice.features.ncols,
        advice.features.nnz,
        advice.features.bandwidth
    );

    // The winner is a compiled kernel, ready to pair with the winning
    // storage and execute.
    let best = advice.best();
    let a = AnyFormat::<f64>::try_from_triplets(&best.format, &t)?;
    let mut env = ExecEnv::new();
    env.set_param("M", 1000).set_param("N", 1000);
    env.bind_sparse("A", a.as_view());
    env.bind_vec("x", vec![1.0; 1000]);
    env.bind_vec("y", vec![0.0; 1000]);
    best.kernel.interpret(&mut env)?;
    assert_eq!(env.take_vec("y").len(), 1000);
    Ok(())
}

#[test]
fn readme_advisor_snippet_runs() {
    advise().unwrap();
}

// README "Robustness & self-healing" — identical to the documented
// snippet. Must hold on hosts with and without a usable `rustc`: a
// native backend carries the Validated provenance (or Compiled when
// validation is off), and every failure mode is a typed reason plus
// the interpreter.
fn heal() -> Result<(), bernoulli::Error> {
    let session = Session::new();
    let t = Triplets::from_entries(3, 3, &[(0, 0, 2.0), (1, 2, 1.0), (2, 1, 4.0)]);
    let a = Csr::from_triplets(&t);
    let bound = session.bind(&kernels::mvm(), &[("A", a.format_view())])?;
    let kernel = session.compile(&bound)?;

    let store = KernelStore::at(std::env::temp_dir().join("bernoulli-readme-heal"));
    match kernel.backend_in(&store) {
        // Probed against the interpreter before being served.
        KernelBackend::Validated(k) => assert!(k.validated()),
        // Validation switched off (`set_kernel_validation(false)`) or
        // no probe for this signature: still native, no badge.
        KernelBackend::Compiled(_) => {}
        // No rustc, a tripped breaker, a quarantined or corrupt
        // artifact: a typed reason and the always-correct interpreter.
        KernelBackend::Interpreted { reason } => {
            eprintln!("interpreter fallback: {reason}");
        }
    }
    Ok(())
}

#[test]
fn readme_healing_snippet_runs() {
    heal().unwrap();
}
