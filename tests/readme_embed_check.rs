//! Mirror of the README "Embedding the compiler" example — keeps the
//! documented snippet compiling and running as the API evolves.

use bernoulli::prelude::*;

fn build() -> Result<(), bernoulli::Error> {
    let session = Session::new();
    let t = Triplets::from_entries(3, 3, &[(0, 0, 2.0), (1, 0, 1.0), (1, 1, 3.0), (2, 2, 4.0)]);

    let a = Csr::from_triplets(&t);
    let mvm = session.bind(&kernels::mvm(), &[("A", a.format_view())])?;
    let mvm_kernel = session.compile(&mvm)?;
    let rust_src = mvm_kernel.emit("mvm_csr")?;

    let l = Jad::from_triplets(&t);
    let ts = session.bind(&kernels::ts(), &[("L", l.format_view())])?;
    let ts_kernel = session.compile(&ts)?;
    assert!(ts_kernel.cost() > 0.0);
    assert!(rust_src.contains("fn mvm_csr"));
    Ok(())
}

#[test]
fn readme_snippet_runs() {
    build().unwrap();
}
