//! Fault-injected chaos tests over the whole pipeline (run with
//! `--features faults`): panics, delays, and budget starvation at the
//! named sites inside the pool, the polyhedral layer, and the search
//! must surface as a typed error or a verified-correct degraded result
//! — never a process abort, never a wrong answer — and the next compile
//! after the fault clears must succeed at full quality.
#![cfg(feature = "faults")]

use bernoulli::prelude::*;
use bernoulli::synth::SynthError;
use bernoulli_govern::faults;
use std::sync::Mutex;
use std::time::Duration;

/// Fault table + installed budget are process-global state.
static CHAOS: Mutex<()> = Mutex::new(());

const MVM: &str = "
    program mvm(M, N) {
      in matrix A[M][N];
      in vector x[N];
      inout vector y[M];
      for i in 0..M {
        for j in 0..N {
          y[i] = y[i] + A[i][j] * x[j];
        }
      }
    }
";

fn csr() -> Csr {
    Csr::from_triplets(&Triplets::from_entries(
        3,
        3,
        &[(0, 0, 2.0), (0, 2, 5.0), (1, 2, 1.0), (2, 1, 4.0)],
    ))
}

fn reference() -> Vec<f64> {
    let a = [[2.0, 0.0, 5.0], [0.0, 0.0, 1.0], [0.0, 4.0, 0.0]];
    let x = [1.0, 2.0, 3.0];
    (0..3)
        .map(|i| (0..3).map(|j| a[i][j] * x[j]).sum())
        .collect()
}

fn run_kernel(kernel: &CompiledKernel, a: &Csr) -> Vec<f64> {
    let mut env = ExecEnv::new();
    env.set_param("M", 3).set_param("N", 3);
    env.bind_sparse("A", a);
    env.bind_vec("x", vec![1.0, 2.0, 3.0]);
    env.bind_vec("y", vec![0.0; 3]);
    kernel.interpret(&mut env).unwrap();
    env.take_vec("y")
}

fn compile(s: &Session, a: &Csr) -> Result<CompiledKernel, SynthError> {
    let p = s.parse(MVM).unwrap();
    let bound = s.bind(&p, &[("A", a.format_view())]).unwrap();
    s.compile(&bound)
}

/// Guard restoring a clean fault table even when an assertion fails.
struct ClearFaults;
impl Drop for ClearFaults {
    fn drop(&mut self) {
        faults::clear();
    }
}

#[test]
fn fm_starvation_degrades_to_correct_result() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    let a = csr();
    // A generous budget that would never trip on its own; the injected
    // starvation forces it into the exhausted state at the first
    // Fourier–Motzkin elimination.
    let s = Session::new().with_op_budget(1_000_000_000);
    faults::configure("polyhedra.fm=starve#1");
    let kernel = compile(&s, &a).expect("starvation must degrade, not fail");
    assert!(kernel.report().degraded);
    assert_eq!(run_kernel(&kernel, &a), reference());
    // Fault cleared: the same session compiles at full quality again
    // (fresh budget per compile; the degraded result was not cached).
    faults::clear();
    let healed = compile(&s, &a).unwrap();
    assert!(!healed.report().degraded);
    assert_eq!(run_kernel(&healed, &a), reference());
}

#[test]
fn farkas_starvation_degrades_to_correct_result() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    let a = csr();
    let s = Session::new().with_op_budget(1_000_000_000);
    faults::configure("polyhedra.farkas=starve#1");
    match compile(&s, &a) {
        // Depending on where the starved call sits, either the search
        // degrades or the conservative contradiction fallback rejects
        // enough plans that only the baseline remains — both are sound.
        Ok(kernel) => assert_eq!(run_kernel(&kernel, &a), reference()),
        Err(e) => panic!("starvation must never fail outright: {e}"),
    }
}

#[test]
fn fm_delays_with_deadline_still_produce_correct_result() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    let a = csr();
    // Every FM elimination sleeps 3ms; the 15ms deadline cannot cover
    // the full search, so the compile must degrade to the baseline.
    let s = Session::new().with_deadline(Duration::from_millis(15));
    faults::configure("polyhedra.fm=delay:3");
    let kernel = compile(&s, &a).expect("deadline must degrade, not fail");
    assert_eq!(run_kernel(&kernel, &a), reference());
    assert!(kernel.report().degraded);
}

#[test]
fn search_config_panic_is_a_typed_error_and_recoverable() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    let a = csr();
    let s = Session::new();
    faults::configure("synth.config=panic#1");
    match compile(&s, &a) {
        Err(SynthError::Pool(e)) => {
            assert!(e.to_string().contains("synth.config"), "{e}");
        }
        other => panic!("expected typed pool error, got {other:?}"),
    }
    // The process survived; with the fault spent the session recovers.
    let kernel = compile(&s, &a).unwrap();
    assert_eq!(run_kernel(&kernel, &a), reference());
}

#[test]
fn worker_deaths_do_not_corrupt_a_parallel_compile() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    let a = csr();
    let mut s = Session::new().with_threads(3);
    s.options_mut().parallel = true;
    // Kill two workers as they pick up jobs: the surviving lanes drain
    // the fan-out, the dead workers respawn on the next submission.
    faults::configure("pool.worker=panic#2");
    let kernel = compile(&s, &a).unwrap();
    assert_eq!(run_kernel(&kernel, &a), reference());
    faults::clear();
    let again = compile(&s, &a).unwrap();
    assert_eq!(run_kernel(&again, &a), reference());
}

#[test]
fn combined_faults_never_crash_or_corrupt() {
    let _lock = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    let _clear = ClearFaults;
    let a = csr();
    // Several sites armed at once, each for a bounded number of hits,
    // over repeated compiles: every outcome is a typed error or a
    // verified-correct kernel, and the final (fault-free) compile is
    // pristine.
    faults::configure("polyhedra.fm=starve#1,synth.config=panic#1,pool.worker=panic#1");
    let mut s = Session::new().with_threads(2).with_op_budget(1_000_000_000);
    s.options_mut().parallel = true;
    for _ in 0..4 {
        match compile(&s, &a) {
            Ok(kernel) => assert_eq!(run_kernel(&kernel, &a), reference()),
            Err(SynthError::Pool(_)) | Err(SynthError::Deadline { .. }) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
    faults::clear();
    let kernel = compile(&s, &a).unwrap();
    assert!(!kernel.report().degraded);
    assert_eq!(run_kernel(&kernel, &a), reference());
}
